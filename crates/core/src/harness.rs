//! Crash-safe sweep orchestration: the supervised runtime that runs the
//! full experiment matrix (system × style × seed × fault profile) under
//! panic isolation, deterministic deadlines, capped retry, and a
//! write-ahead journal so an interrupted sweep resumes bit-identically.
//!
//! The paper's experiment is itself a matrix — participants × systems ×
//! prompting styles — and a long sweep over it must tolerate partial
//! failure without discarding completed cells. The harness supervises
//! each cell:
//!
//! * **Panic isolation** — every attempt runs inside `catch_unwind`.
//!   Injected crashes carry an [`InjectedCrash`] payload (raised with
//!   `panic_any`, never the `panic!` macro, which repolint forbids);
//!   any *other* payload is a harness bug and is re-raised with
//!   `resume_unwind` so real defects are never swallowed.
//! * **Deterministic deadlines** — time is a virtual clock counted in
//!   *steps* (one prompt = one step); repolint forbids wall-clock reads
//!   in seeded modules, and the deadline must replay identically on
//!   resume. A wedged task burns its whole step budget.
//! * **Retry with capped exponential backoff** — a failed attempt waits
//!   `min(base << attempt, cap)` virtual ticks before the next try.
//! * **Circuit breaker + quarantine** — a cell that exhausts its retry
//!   budget is quarantined; once a task *class* (system × profile)
//!   accumulates `breaker_threshold` quarantines, remaining cells of
//!   that class are skipped outright. Coverage accounting (attempted /
//!   completed / quarantined / skipped) always sums to the full matrix,
//!   so a degraded sweep is an honest partial result.
//! * **Write-ahead journal** — every finished cell is appended to a
//!   JSONL journal *before* the sweep moves on. [`parse_journal`]
//!   replays a journal prefix (dropping a truncated or corrupt trailing
//!   record) and [`Sweep::run_from`] executes only the remainder; the
//!   final [`SweepReport`] is byte-identical to an uninterrupted run.
//!
//! Determinism is load-bearing everywhere: per-cell RNG seeds are
//! derived by hashing the cell key (never by sharing a stream across
//! cells), so executing cells 0..k, crashing, and re-running k..n
//! cannot perturb any cell's outcome.

use crate::fault::{
    FaultId, FaultInjector, FaultKind, FaultPlan, FaultProfile, FaultSite, ResilienceReport,
};
use crate::llm::{CodeArtifact, DefectKind};
use crate::paper::{PaperSpec, TargetSystem};
use crate::prompt::PromptStyle;
use crate::session::ReproductionSession;
use crate::student::Participant;
use crate::validate::StaticGate;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Journal format version; bumped on any incompatible layout change.
/// Version 2 added the `cache` scheme identifier to the header.
pub const JOURNAL_VERSION: u32 = 2;

// Distinct salts keep the three per-cell RNG streams (session, session
// faults, harness faults) independent even though they hash the same
// cell key.
const SALT_SESSION: u64 = 0x5e55_1011_0000_0001;
const SALT_FAULTS: u64 = 0xfa17_0a75_0000_0002;
const SALT_HARNESS: u64 = 0x4a52_4e53_0000_0003;
pub(crate) const SALT_WORKER: u64 = 0x3090_4b32_0000_0004;
pub(crate) const SALT_SHARD: u64 = 0x54a2_d001_0000_0005;
pub(crate) const SALT_FABRIC: u64 = 0xfab2_1c5c_0000_0006;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The seed for one of a cell's RNG streams. Pure function of the cell
/// key, the attempt number and the stream salt — no state crosses
/// cells, which is what makes journal replay sound.
pub(crate) fn derive_seed(cell: CellId, attempt: u32, salt: u64) -> u64 {
    splitmix64(
        fnv1a64(cell.key().as_bytes())
            ^ cell.seed.rotate_left(17)
            ^ salt
            ^ (u64::from(attempt) << 48),
    )
}

/// Topology scale of a cell's validation fabric: the paper's own
/// topologies, or a seeded k-ary fat-tree DCN that the DPV pipeline
/// verifies at hyper-scale via [`crate::dpv_scale`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TopoScale {
    /// The paper's own validation topologies (the default). Serialized
    /// away entirely (`skip_serializing_if`) so pre-scale journals and
    /// fingerprints replay byte-identically.
    #[default]
    Paper,
    /// A seeded k-ary fat-tree fabric; the cell additionally runs a
    /// partitioned data-plane verification over it and records the
    /// canonical verdict digest.
    FatTree {
        /// Fat-tree arity (even, `k/2` a power of two).
        k: u8,
    },
}

impl TopoScale {
    /// Whether this is the default paper scale (used by serde to keep
    /// old journal bytes stable).
    pub fn is_paper(&self) -> bool {
        matches!(self, TopoScale::Paper)
    }

    /// Stable short name: `paper`, or `ft8` for a k=8 fat-tree.
    pub fn name(&self) -> String {
        match self {
            TopoScale::Paper => "paper".to_string(),
            TopoScale::FatTree { k } => format!("ft{k}"),
        }
    }

    /// Parse a scale name (`paper`, `ft4`, `ft8`, ... — inverse of
    /// [`TopoScale::name`]). Fat-tree arities must be even with `k/2` a
    /// power of two (the prefix-exact addressing constraint), and small
    /// enough that a sweep cell's fabric build stays cheap.
    pub fn parse(s: &str) -> Option<TopoScale> {
        if s == "paper" {
            return Some(TopoScale::Paper);
        }
        let digits = s.strip_prefix("ft")?;
        let k: u8 = digits.parse().ok()?;
        // Canonical spelling only (no leading zeros): parse must be the
        // exact inverse of `name`, since journal keys embed the name.
        if k.to_string() == digits
            && (4..=32).contains(&k)
            && k.is_multiple_of(2)
            && (k / 2).is_power_of_two()
        {
            Some(TopoScale::FatTree { k })
        } else {
            None
        }
    }
}

/// One cell of the sweep matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellId {
    /// Target system (fixes the participant preset).
    pub system: TargetSystem,
    /// Prompting style override for this cell.
    pub style: PromptStyle,
    /// Base seed of the cell (mixed into every derived stream).
    pub seed: u64,
    /// Fault profile the cell runs under.
    pub profile: FaultProfile,
    /// Validation-topology scale. Defaults to [`TopoScale::Paper`] and
    /// is omitted from serialized cells at that default, so journals
    /// written before the scale axis existed parse and re-serialize
    /// byte-identically.
    #[serde(default, skip_serializing_if = "TopoScale::is_paper")]
    pub scale: TopoScale,
}

impl CellId {
    /// Stable human-readable key, e.g. `NCFlow/pseudo/3/chaos`. Cells
    /// at a non-default scale append its name (`.../chaos/ft8`): paper
    /// cells keep their pre-scale keys, so every derived RNG stream —
    /// and therefore every journal byte — is unchanged for them.
    pub fn key(&self) -> String {
        let base = format!(
            "{}/{}/{}/{}",
            self.system.name(),
            self.style.name(),
            self.seed,
            self.profile.name()
        );
        match self.scale {
            TopoScale::Paper => base,
            scale => format!("{base}/{}", scale.name()),
        }
    }

    /// Circuit-breaker class: system × profile. Seeds and styles share
    /// a breaker because they fail for the same structural reasons.
    pub fn class(&self) -> String {
        format!("{}:{}", self.system.name(), self.profile.name())
    }

    /// The participant driving this cell: the paper's preset for the
    /// system, with the prompting style overridden by the cell.
    pub fn participant(&self) -> Participant {
        let mut p = Participant::preset(self.system);
        p.strategy.style = self.style;
        p.strategy.pseudocode_first = self.style == PromptStyle::ModularPseudocode;
        p
    }
}

/// Deterministic resource limits for one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskLimits {
    /// Step budget per attempt (one prompt = one step); a wedged task
    /// burns the whole budget.
    pub deadline_steps: u64,
    /// Attempts per cell before quarantine.
    pub max_attempts: u32,
    /// Base backoff after a failed attempt, in virtual ticks.
    pub backoff_base: u64,
    /// Backoff ceiling, in virtual ticks.
    pub backoff_cap: u64,
    /// Quarantines per class before the breaker trips.
    pub breaker_threshold: u32,
}

impl Default for TaskLimits {
    fn default() -> Self {
        TaskLimits {
            // Sessions run 10–200 prompts; 400 only reaps wedged tasks.
            deadline_steps: 400,
            max_attempts: 3,
            backoff_base: 8,
            backoff_cap: 64,
            breaker_threshold: 3,
        }
    }
}

impl TaskLimits {
    /// Backoff after failed attempt `attempt`: `min(base << attempt,
    /// cap)`, saturating at the cap once the shift would overflow.
    ///
    /// `checked_shl` is *not* enough here: it only returns `None` for
    /// shift amounts ≥ 64, while `8 << 61` silently wraps the *value*
    /// to zero — which collapsed the backoff to `min(0, cap) = 0` for
    /// large attempt counts instead of pinning it at the cap.
    pub fn backoff(&self, attempt: u32) -> u64 {
        if self.backoff_base == 0 {
            return 0;
        }
        if attempt > self.backoff_base.leading_zeros() {
            // The shifted value no longer fits in u64; it is certainly
            // past any cap ≤ u64::MAX.
            return self.backoff_cap;
        }
        (self.backoff_base << attempt).min(self.backoff_cap)
    }
}

/// The sweep matrix plus its limits. Expansion order is canonical
/// (systems → styles → seeds → profiles) and the config fingerprint is
/// embedded in the journal header, so a journal can never silently
/// replay into a different matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Systems to sweep.
    pub systems: Vec<TargetSystem>,
    /// Prompting styles to sweep.
    pub styles: Vec<PromptStyle>,
    /// Base seeds to sweep.
    pub seeds: Vec<u64>,
    /// Fault profiles to sweep.
    pub profiles: Vec<FaultProfile>,
    /// Topology scales to sweep. Defaults to `[Paper]` and is omitted
    /// from the serialized config at that default, so pre-scale
    /// fingerprints (and therefore journal headers) are unchanged.
    #[serde(default = "default_scales", skip_serializing_if = "scales_is_default")]
    pub scales: Vec<TopoScale>,
    /// Per-cell limits.
    pub limits: TaskLimits,
}

fn default_scales() -> Vec<TopoScale> {
    vec![TopoScale::Paper]
}

fn scales_is_default(scales: &[TopoScale]) -> bool {
    scales == [TopoScale::Paper]
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            systems: TargetSystem::EXPERIMENT.to_vec(),
            styles: vec![PromptStyle::ModularText, PromptStyle::ModularPseudocode],
            seeds: vec![0, 1, 2],
            profiles: vec![FaultProfile::None, FaultProfile::Heavy],
            scales: default_scales(),
            limits: TaskLimits::default(),
        }
    }
}

impl SweepConfig {
    /// The full matrix in canonical order. The scale axis is innermost,
    /// so a `[Paper]`-only config expands exactly as it did before the
    /// axis existed.
    pub fn expand(&self) -> Vec<CellId> {
        let mut cells = Vec::with_capacity(self.total_cells());
        for &system in &self.systems {
            for &style in &self.styles {
                for &seed in &self.seeds {
                    for &profile in &self.profiles {
                        for &scale in &self.scales {
                            cells.push(CellId { system, style, seed, profile, scale });
                        }
                    }
                }
            }
        }
        cells
    }

    /// Matrix size.
    pub fn total_cells(&self) -> usize {
        self.systems.len()
            * self.styles.len()
            * self.seeds.len()
            * self.profiles.len()
            * self.scales.len()
    }

    /// Content fingerprint of the config (matrix + limits); stored in
    /// the journal header and checked on resume.
    pub fn fingerprint(&self) -> String {
        let json = serde_json::to_string(self).unwrap_or_default();
        format!("{:016x}", fnv1a64(json.as_bytes()))
    }
}

/// Panic payload for injected task crashes. Raised with
/// `std::panic::panic_any` so the injection is distinguishable (by
/// downcast) from a genuine harness bug, which is re-raised.
#[derive(Debug, Clone, Copy)]
pub struct InjectedCrash {
    /// The attempt that crashed.
    pub attempt: u32,
}

/// Install a process-wide panic hook that silences injected crashes
/// (they are expected, caught, and journaled) while delegating every
/// other panic to the previously installed hook. Idempotent. The shard
/// child process installs it before running its range.
pub(crate) fn install_quiet_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info.payload().downcast_ref::<InjectedCrash>().is_some()
                || info.payload().downcast_ref::<crate::pool::InjectedWorkerCrash>().is_some();
            if !injected {
                prev(info);
            }
        }));
    });
}

/// How one attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttemptVerdict {
    /// The session finished (and passed the gate, when one is wired).
    Completed,
    /// The task panicked; the harness caught it.
    Panicked,
    /// The task wedged or overran its step budget and was reaped.
    DeadlineExceeded,
    /// The static auditor gate rejected the produced artifacts.
    GateRejected,
}

/// One attempt at one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttemptRecord {
    /// 0-based attempt number.
    pub attempt: u32,
    /// How it ended.
    pub verdict: AttemptVerdict,
    /// Virtual ticks the attempt consumed.
    pub steps: u64,
    /// Backoff ticks charged after this attempt (0 on success or on
    /// the final attempt).
    pub backoff: u64,
}

/// Terminal status of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellStatus {
    /// An attempt completed.
    Completed,
    /// Every attempt failed; the cell is quarantined.
    Quarantined,
    /// Never attempted: its class's breaker had already tripped.
    SkippedByBreaker,
}

/// Measured outcome of a completed cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// Participant letter.
    pub participant: String,
    /// Prompts sent (Figure 4, left axis).
    pub prompts: u64,
    /// Words sent (Figure 4, right axis).
    pub words: u64,
    /// Generated LoC (Figure 5 numerator).
    pub loc: u64,
    /// Defects shipped in the prototype.
    pub residual_defects: Vec<DefectKind>,
    /// Error-severity findings from the auditor gate (0 without a gate).
    pub gate_errors: u64,
    /// Warning-severity findings from the auditor gate.
    pub gate_warnings: u64,
    /// Canonical verdict digest of the cell's fat-tree DPV run
    /// ([`crate::dpv_scale`]); `None` at [`TopoScale::Paper`], and
    /// omitted from the serialized record then, so pre-scale journal
    /// bytes are unchanged.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub dpv_digest: Option<String>,
}

/// Aggregated fault counts (session injectors + the harness injector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultTally {
    /// Faults injected.
    pub injected: u64,
    /// Faults absorbed by the resilience machinery.
    pub absorbed: u64,
    /// Faults that escaped.
    pub escaped: u64,
}

impl FaultTally {
    /// The zero tally.
    pub fn zero() -> Self {
        FaultTally { injected: 0, absorbed: 0, escaped: 0 }
    }

    /// Fold one injector's report in.
    pub fn add(&mut self, report: &ResilienceReport) {
        self.injected += report.injected;
        self.absorbed += report.absorbed;
        self.escaped += report.escaped;
    }

    /// Fold another tally in.
    pub fn merge(&mut self, other: &FaultTally) {
        self.injected += other.injected;
        self.absorbed += other.absorbed;
        self.escaped += other.escaped;
    }
}

/// Everything the journal stores for one cell: the write-ahead unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// Which cell.
    pub cell: CellId,
    /// How it ended.
    pub status: CellStatus,
    /// Every attempt, in order (empty for skipped cells).
    pub attempts: Vec<AttemptRecord>,
    /// The outcome (present iff `status == Completed`).
    pub result: Option<CellResult>,
    /// Fault counts across all attempts plus the harness injector.
    pub faults: FaultTally,
    /// Virtual clock when the cell started.
    pub clock_start: u64,
    /// Virtual clock when the cell ended.
    pub clock_end: u64,
}

/// First journal line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Layout version ([`JOURNAL_VERSION`]).
    pub version: u32,
    /// [`SweepConfig::fingerprint`] of the sweep that wrote the journal.
    pub fingerprint: String,
    /// Matrix size, for early mismatch detection.
    pub total_cells: u64,
    /// Memoization scheme the sweep ran under
    /// ([`crate::cache::SCHEME`]). Deliberately independent of whether
    /// a memo was attached or warm — cache on/off journals must stay
    /// byte-identical — but an incompatible key-derivation change bumps
    /// the scheme string and rejects stale journals at resume.
    pub cache: String,
}

/// One journaled cell line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLine {
    /// Position in the canonical expansion (must be contiguous).
    pub index: u64,
    /// The record.
    pub record: CellRecord,
}

/// Where journal lines go. Implementations must make a line durable
/// before returning — the write-ahead guarantee is only as strong as
/// the sink.
pub trait JournalSink {
    /// Append one newline-terminated line.
    fn append(&mut self, line: &str) -> Result<(), String>;
}

/// In-memory sink for tests.
#[derive(Debug, Default, Clone)]
pub struct MemoryJournal {
    text: String,
}

impl MemoryJournal {
    /// An empty journal.
    pub fn new() -> Self {
        MemoryJournal::default()
    }

    /// A journal pre-loaded with `text` (simulates a file found on
    /// disk before resume).
    pub fn with_text(text: &str) -> Self {
        MemoryJournal { text: text.to_string() }
    }

    /// Everything appended so far.
    pub fn text(&self) -> &str {
        &self.text
    }
}

impl JournalSink for MemoryJournal {
    fn append(&mut self, line: &str) -> Result<(), String> {
        self.text.push_str(line);
        Ok(())
    }
}

/// Which journal-header field disagreed with the resuming run. Typed
/// so the CLI can name the field and print the matching remedy instead
/// of a generic refusal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MismatchField {
    /// Journal layout version ([`JOURNAL_VERSION`]).
    Version,
    /// [`SweepConfig::fingerprint`] of the matrix + limits.
    Fingerprint,
    /// Matrix size.
    TotalCells,
    /// Memoization scheme identifier ([`crate::cache::SCHEME`]).
    CacheScheme,
    /// Shard count in a coordinator journal header.
    ShardCount,
    /// Lease id in a shard journal header.
    ShardLease,
    /// Cell range in a shard journal header.
    ShardRange,
}

impl MismatchField {
    /// Stable lowercase field name (the CLI tests grep for it).
    pub fn name(self) -> &'static str {
        match self {
            MismatchField::Version => "version",
            MismatchField::Fingerprint => "fingerprint",
            MismatchField::TotalCells => "total-cells",
            MismatchField::CacheScheme => "cache-scheme",
            MismatchField::ShardCount => "shard-count",
            MismatchField::ShardLease => "shard-lease",
            MismatchField::ShardRange => "shard-range",
        }
    }

    /// What the operator should do about it.
    pub fn hint(self) -> &'static str {
        match self {
            MismatchField::Version => {
                "this journal was written by an incompatible build; \
                 delete it (or point --journal elsewhere) to start fresh"
            }
            MismatchField::Fingerprint => {
                "the sweep matrix or limits differ from the run that wrote \
                 this journal; resume with the original flags, or delete \
                 the journal to sweep the new matrix"
            }
            MismatchField::TotalCells => {
                "the matrix size changed; resume with the original axes, \
                 or delete the journal to start fresh"
            }
            MismatchField::CacheScheme => {
                "the memoization key derivation changed incompatibly; \
                 delete the journal to re-sweep under the new scheme"
            }
            MismatchField::ShardCount => {
                "--shards differs from the coordinator journal; resume \
                 with the original shard count, or delete the shard \
                 directory to re-partition"
            }
            MismatchField::ShardLease => {
                "this shard journal belongs to a different lease; delete \
                 the shard directory to re-lease"
            }
            MismatchField::ShardRange => {
                "this shard journal covers a different cell range; delete \
                 the shard directory to re-lease"
            }
        }
    }
}

/// Why a journal cannot be replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// A header field disagrees with the resuming run's configuration.
    Mismatch {
        /// Which field.
        field: MismatchField,
        /// The value the journal recorded.
        found: String,
        /// The value this run expects.
        expected: String,
    },
    /// A non-trailing line is unreadable; the journal is damaged beyond
    /// the safe prefix-drop recovery.
    Corrupt {
        /// 0-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl JournalError {
    /// A header-field mismatch.
    pub fn mismatch(
        field: MismatchField,
        found: impl Into<String>,
        expected: impl Into<String>,
    ) -> Self {
        JournalError::Mismatch { field, found: found.into(), expected: expected.into() }
    }
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Mismatch { field, found, expected } => write!(
                f,
                "journal mismatch: {} — journal has {found}, this run expects {expected}; {}",
                field.name(),
                field.hint()
            ),
            JournalError::Corrupt { line, message } => {
                write!(f, "journal corrupt at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// The replayable prefix of a journal.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// Completed cell records, in canonical order.
    pub records: Vec<CellRecord>,
    /// Byte length of the valid prefix; a resuming caller truncates
    /// the journal file to this length before appending.
    pub valid_bytes: u64,
    /// Whether a truncated or corrupt trailing record was dropped (its
    /// cell re-runs).
    pub dropped_partial: bool,
    /// Whether the valid prefix includes the header line.
    pub has_header: bool,
}

impl Replay {
    /// The empty replay (fresh run).
    pub fn empty() -> Self {
        Replay { records: Vec::new(), valid_bytes: 0, dropped_partial: false, has_header: false }
    }
}

/// Split `text` into lines, keeping byte offsets and whether each line
/// is newline-terminated (an unterminated final line is a torn write).
/// Shared with the shard and coordinator journal parsers.
pub(crate) fn split_lines(text: &str) -> Vec<(&str, u64, bool)> {
    let mut out = Vec::new();
    let mut start = 0;
    while start < text.len() {
        match text[start..].find('\n') {
            Some(i) => {
                let end = start + i + 1;
                out.push((&text[start..start + i], end as u64, true));
                start = end;
            }
            None => {
                out.push((&text[start..], text.len() as u64, false));
                break;
            }
        }
    }
    out
}

/// Validate the fields every journal header shares (version,
/// fingerprint, matrix size, cache scheme) against `config`. The shard
/// runtime reuses this for its extended shard and coordinator headers.
pub(crate) fn check_header(
    header: &JournalHeader,
    config: &SweepConfig,
    total_cells: usize,
) -> Result<(), JournalError> {
    if header.version != JOURNAL_VERSION {
        return Err(JournalError::mismatch(
            MismatchField::Version,
            header.version.to_string(),
            JOURNAL_VERSION.to_string(),
        ));
    }
    let fingerprint = config.fingerprint();
    if header.fingerprint != fingerprint {
        return Err(JournalError::mismatch(
            MismatchField::Fingerprint,
            header.fingerprint.clone(),
            fingerprint,
        ));
    }
    if header.total_cells != total_cells as u64 {
        return Err(JournalError::mismatch(
            MismatchField::TotalCells,
            header.total_cells.to_string(),
            total_cells.to_string(),
        ));
    }
    if header.cache != crate::cache::SCHEME {
        return Err(JournalError::mismatch(
            MismatchField::CacheScheme,
            header.cache.clone(),
            crate::cache::SCHEME,
        ));
    }
    Ok(())
}

/// Parse a journal against `config`, returning the replayable prefix.
///
/// Recovery policy: the *trailing* line may be torn (the process died
/// mid-append) or corrupt — it is dropped and its cell re-runs. Any
/// earlier damage means the file is not an execution prefix and is
/// rejected as [`JournalError::Corrupt`]; a header whose fingerprint,
/// version or matrix size disagrees with `config` is rejected as
/// [`JournalError::Mismatch`].
pub fn parse_journal(text: &str, config: &SweepConfig) -> Result<Replay, JournalError> {
    let lines = split_lines(text);
    if lines.is_empty() {
        return Ok(Replay::empty());
    }
    let cells = config.expand();
    let last = lines.len() - 1;

    // Header line.
    let (head_text, head_end, head_terminated) = lines[0];
    let header: JournalHeader = match serde_json::from_str(head_text) {
        Ok(h) => h,
        Err(e) => {
            if last == 0 && !head_terminated {
                // Torn header: nothing valid yet, start over.
                return Ok(Replay {
                    records: Vec::new(),
                    valid_bytes: 0,
                    dropped_partial: true,
                    has_header: false,
                });
            }
            return Err(JournalError::Corrupt { line: 0, message: e.to_string() });
        }
    };
    if !head_terminated {
        // Parsed but torn — the trailing newline is part of the record.
        return Ok(Replay {
            records: Vec::new(),
            valid_bytes: 0,
            dropped_partial: true,
            has_header: false,
        });
    }
    check_header(&header, config, cells.len())?;

    let mut records = Vec::new();
    let mut valid_bytes = head_end;
    let mut dropped_partial = false;
    for (n, &(line, end, terminated)) in lines.iter().enumerate().skip(1) {
        let trailing = n == last;
        let parsed: Result<CellLine, String> = serde_json::from_str(line)
            .map_err(|e| e.to_string())
            .and_then(|cl: CellLine| {
                let i = records.len();
                if cl.index != i as u64 {
                    return Err(format!("index {} out of order (expected {i})", cl.index));
                }
                match cells.get(i) {
                    Some(cell) if *cell == cl.record.cell => Ok(cl),
                    Some(cell) => {
                        Err(format!("cell {} (expected {})", cl.record.cell.key(), cell.key()))
                    }
                    None => Err(format!("{} records but the matrix has {} cells", i + 1, cells.len())),
                }
            })
            .and_then(|cl| {
                if terminated {
                    Ok(cl)
                } else {
                    Err("torn write (missing trailing newline)".to_string())
                }
            });
        match parsed {
            Ok(cl) => {
                records.push(cl.record);
                valid_bytes = end;
            }
            Err(_) if trailing => {
                dropped_partial = true;
                break;
            }
            Err(message) => {
                return Err(JournalError::Corrupt { line: n, message });
            }
        }
    }
    Ok(Replay { records, valid_bytes, dropped_partial, has_header: true })
}

/// Hook the CLI uses to wire the static auditor gate in without making
/// `core` depend on `analysis`: given the spec and the shipped
/// artifacts, return the gate summary. `Send + Sync` because pool
/// workers call the gate from their own threads.
pub type GateFn = Box<dyn Fn(&PaperSpec, &[CodeArtifact]) -> StaticGate + Send + Sync>;

/// Coverage accounting over the full matrix. Invariant: `completed +
/// quarantined + skipped_by_breaker == total` and `attempted ==
/// completed + quarantined` — no cell is ever silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coverage {
    /// Matrix size.
    pub total: u64,
    /// Cells that ran at least one attempt.
    pub attempted: u64,
    /// Cells that completed.
    pub completed: u64,
    /// Cells that exhausted their retries.
    pub quarantined: u64,
    /// Cells skipped because their class's breaker had tripped.
    pub skipped_by_breaker: u64,
}

impl Coverage {
    /// Whether the accounting sums to the full matrix.
    pub fn consistent(&self) -> bool {
        self.completed + self.quarantined + self.skipped_by_breaker == self.total
            && self.attempted == self.completed + self.quarantined
    }
}

/// One quarantined cell, surfaced in the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantineEntry {
    /// Which cell.
    pub cell: CellId,
    /// Attempts it burned.
    pub attempts: u64,
    /// Verdict of the final attempt.
    pub last_verdict: Option<AttemptVerdict>,
}

/// Per-class breaker state in the final report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakerEntry {
    /// Breaker class (system × profile).
    pub class: String,
    /// Quarantines accumulated by the class.
    pub quarantined: u64,
    /// Whether the breaker tripped (skipping later cells).
    pub tripped: bool,
}

/// Progress of one bounded, job-scoped slice ([`Sweep::run_slice`]).
#[derive(Debug, Clone, PartialEq)]
pub struct JobStep {
    /// Cells journaled after the slice (the committed prefix).
    pub journaled: u64,
    /// Matrix size.
    pub total: u64,
    /// Virtual clock after the last committed cell — the serve
    /// daemon's deadline currency (never wall time).
    pub clock: u64,
    /// The assembled report, present once every cell is journaled.
    pub report: Option<SweepReport>,
}

/// The sweep's final, journal-reconstructible output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// [`SweepConfig::fingerprint`] of the sweep.
    pub fingerprint: String,
    /// The configuration that ran.
    pub config: SweepConfig,
    /// Coverage accounting (always sums to the matrix).
    pub coverage: Coverage,
    /// Total virtual ticks consumed.
    pub clock_ticks: u64,
    /// Fault counts across every injector in the sweep.
    pub faults: FaultTally,
    /// Quarantined cells.
    pub quarantine: Vec<QuarantineEntry>,
    /// Breaker state per class that quarantined at least once.
    pub breakers: Vec<BreakerEntry>,
    /// Every cell record, in canonical order.
    pub cells: Vec<CellRecord>,
}

impl SweepReport {
    /// Pretty JSON rendering — the byte-compared resume artifact.
    pub fn render_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Human-readable multi-line summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let c = self.coverage;
        out.push_str(&format!(
            "sweep {}: {} cells — {} completed, {} quarantined, {} skipped by breaker\n",
            self.fingerprint, c.total, c.completed, c.quarantined, c.skipped_by_breaker
        ));
        out.push_str(&format!(
            "clock: {} virtual ticks; faults: {} injected, {} absorbed, {} escaped\n",
            self.clock_ticks, self.faults.injected, self.faults.absorbed, self.faults.escaped
        ));
        for b in &self.breakers {
            out.push_str(&format!(
                "breaker {}: {} quarantined{}\n",
                b.class,
                b.quarantined,
                if b.tripped { " [TRIPPED]" } else { "" }
            ));
        }
        for q in &self.quarantine {
            let verdict = match q.last_verdict {
                Some(AttemptVerdict::Panicked) => "panicked",
                Some(AttemptVerdict::DeadlineExceeded) => "deadline exceeded",
                Some(AttemptVerdict::GateRejected) => "gate rejected",
                Some(AttemptVerdict::Completed) | None => "unknown",
            };
            out.push_str(&format!(
                "quarantined {} after {} attempts (last: {verdict})\n",
                q.cell.key(),
                q.attempts
            ));
        }
        out
    }
}

pub(crate) fn json_line<T: Serialize>(value: &T) -> Result<String, String> {
    serde_json::to_string(value)
        .map(|mut s| {
            s.push('\n');
            s
        })
        .map_err(|e| e.to_string())
}

/// Everything one cell's execution produces *before* commit-time
/// supervision state is applied: the attempt history, the outcome, the
/// fault tally, and the virtual ticks consumed. A pure function of the
/// [`CellId`] (every RNG stream is derived from the cell key), which
/// is what makes speculative parallel execution sound: the pool can
/// run cells in any order and the commit step re-anchors them to the
/// canonical clock and breaker state. Serializable because the sharded
/// runtime journals works — not committed records — per shard, and the
/// merge step replays them through [`Sweep`]'s commit path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellWork {
    /// Every attempt, in order.
    pub attempts: Vec<AttemptRecord>,
    /// The outcome (present iff the final attempt completed).
    pub result: Option<CellResult>,
    /// Fault counts across all attempts plus the harness injector.
    pub faults: FaultTally,
    /// Total virtual ticks consumed (steps plus backoff).
    pub ticks: u64,
}

/// The supervised sweep runtime.
pub struct Sweep {
    config: SweepConfig,
    gate: Option<GateFn>,
    workers: usize,
    memo: Option<std::sync::Arc<crate::cache::CellMemo>>,
}

impl std::fmt::Debug for Sweep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sweep")
            .field("config", &self.config)
            .field("gate", &self.gate.is_some())
            .field("workers", &self.workers)
            .field("memo", &self.memo.is_some())
            .finish()
    }
}

impl Sweep {
    /// A sweep over `config`, with no auditor gate, executing serially.
    pub fn new(config: SweepConfig) -> Self {
        Sweep { config, gate: None, workers: 1, memo: None }
    }

    /// Wire in the static auditor gate; a rejecting gate fails the
    /// attempt (and can quarantine the cell).
    pub fn with_gate(mut self, gate: GateFn) -> Self {
        self.gate = Some(gate);
        self
    }

    /// Execute cells on `workers` threads (clamped to at least 1).
    /// Cells run out of order but commit in canonical matrix order, so
    /// the journal and report are byte-identical for every worker
    /// count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Attach a memoization store ([`crate::cache::CellMemo`]).
    /// [`Sweep::execute_cell`] is a pure function of the cell id, so a
    /// memo — cold, warm, or shared with other sweeps — cannot change
    /// any journal or report byte; it only skips redundant work.
    pub fn with_cache(mut self, memo: std::sync::Arc<crate::cache::CellMemo>) -> Self {
        self.memo = Some(memo);
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configuration this sweep runs.
    pub fn config(&self) -> &SweepConfig {
        &self.config
    }

    /// Run the whole matrix from scratch, journaling into `sink`.
    pub fn run(&self, sink: &mut dyn JournalSink) -> Result<SweepReport, String> {
        self.run_from(&Replay::empty(), sink)
    }

    /// Parse `journal_text` and run the remainder. The caller is
    /// responsible for truncating the on-disk journal to
    /// [`Replay::valid_bytes`] before handing over the append sink.
    pub fn resume(
        &self,
        journal_text: &str,
        sink: &mut dyn JournalSink,
    ) -> Result<SweepReport, String> {
        let replay = parse_journal(journal_text, &self.config).map_err(|e| e.to_string())?;
        self.run_from(&replay, sink)
    }

    /// Replay `replay` and execute every remaining cell, appending each
    /// finished record to `sink` before moving on (write-ahead).
    ///
    /// With `workers > 1` the remaining cells are executed
    /// speculatively on a pool ([`crate::pool`]) and **committed** in
    /// canonical matrix order through a reorder buffer; supervision
    /// state (breaker counts, the virtual clock) advances only at
    /// commit, so the journal and report are byte-identical to a
    /// single-worker run.
    pub fn run_from(&self, replay: &Replay, sink: &mut dyn JournalSink) -> Result<SweepReport, String> {
        install_quiet_hook();
        let cells = self.config.expand();
        if replay.records.len() > cells.len() {
            return Err(format!(
                "replay has {} records but the matrix has {} cells",
                replay.records.len(),
                cells.len()
            ));
        }
        if !replay.has_header {
            let header = JournalHeader {
                version: JOURNAL_VERSION,
                fingerprint: self.config.fingerprint(),
                total_cells: cells.len() as u64,
                cache: crate::cache::SCHEME.to_string(),
            };
            sink.append(&json_line(&header)?)?;
        }
        // Pre-size for the whole matrix: this buffer grows to one
        // record per cell, and the parallel path pushes from the
        // commit callback, where a reallocation pause would stall the
        // reorder pipeline.
        let mut records = Vec::with_capacity(cells.len());
        records.extend_from_slice(&replay.records);
        let mut clock = records.last().map_or(0, |r| r.clock_end);
        let mut breaker: BTreeMap<String, u32> = BTreeMap::new();
        for r in &records {
            if r.status == CellStatus::Quarantined {
                *breaker.entry(r.cell.class()).or_insert(0) += 1;
            }
        }
        let start = records.len();
        if self.workers > 1 && cells.len() - start > 1 {
            crate::pool::run_ordered(
                self.workers,
                &cells[start..],
                |cell| self.execute_cell(cell),
                |offset, work| {
                    let i = start + offset;
                    let record = self.commit_cell(cells[i], Some(work), &mut clock, &mut breaker);
                    let line = CellLine { index: i as u64, record };
                    sink.append(&json_line(&line)?)?;
                    records.push(line.record);
                    Ok(())
                },
            )?;
        } else {
            for (i, &cell) in cells.iter().enumerate().skip(start) {
                // Serial fast path: consult the breaker *before*
                // executing, so a skipped cell costs nothing. The
                // parallel path executes speculatively and discards at
                // commit — same records either way, because
                // `commit_cell` makes the identical decision.
                let work = if self.breaker_tripped(&breaker, cell) {
                    None
                } else {
                    Some(self.execute_cell(cell))
                };
                let record = self.commit_cell(cell, work, &mut clock, &mut breaker);
                let line = CellLine { index: i as u64, record };
                sink.append(&json_line(&line)?)?;
                records.push(line.record);
            }
        }
        Ok(self.assemble(records, clock))
    }

    /// Job-scoped entry point for long-lived callers (the serve
    /// daemon): replay `replay`, execute at most `budget` further
    /// cells serially — each one write-ahead journaled like
    /// [`Sweep::run_from`] — then stop and report progress.
    ///
    /// Because [`Sweep::execute_cell`] is a pure function of the cell
    /// id and supervision state (virtual clock, breaker counts) is
    /// rebuilt from the committed prefix on every call, a journal
    /// grown slice by slice — across scheduler turns, interleaved
    /// tenants, or daemon restarts — is byte-identical to one written
    /// by a single uninterrupted run. The slice size is therefore pure
    /// scheduling policy: it can never change a journal byte.
    pub fn run_slice(
        &self,
        replay: &Replay,
        sink: &mut dyn JournalSink,
        budget: u64,
    ) -> Result<JobStep, String> {
        install_quiet_hook();
        let cells = self.config.expand();
        if replay.records.len() > cells.len() {
            return Err(format!(
                "replay has {} records but the matrix has {} cells",
                replay.records.len(),
                cells.len()
            ));
        }
        if !replay.has_header {
            let header = JournalHeader {
                version: JOURNAL_VERSION,
                fingerprint: self.config.fingerprint(),
                total_cells: cells.len() as u64,
                cache: crate::cache::SCHEME.to_string(),
            };
            sink.append(&json_line(&header)?)?;
        }
        let mut records = Vec::with_capacity(cells.len());
        records.extend_from_slice(&replay.records);
        let mut clock = records.last().map_or(0, |r| r.clock_end);
        let mut breaker: BTreeMap<String, u32> = BTreeMap::new();
        for r in &records {
            if r.status == CellStatus::Quarantined {
                *breaker.entry(r.cell.class()).or_insert(0) += 1;
            }
        }
        let start = records.len();
        let stop = cells.len().min(start.saturating_add(budget as usize));
        for (i, &cell) in cells.iter().enumerate().take(stop).skip(start) {
            let work = if self.breaker_tripped(&breaker, cell) {
                None
            } else {
                Some(self.execute_cell(cell))
            };
            let record = self.commit_cell(cell, work, &mut clock, &mut breaker);
            let line = CellLine { index: i as u64, record };
            sink.append(&json_line(&line)?)?;
            records.push(line.record);
        }
        let journaled = records.len() as u64;
        let total = cells.len() as u64;
        let report = if journaled == total { Some(self.assemble(records, clock)) } else { None };
        Ok(JobStep { journaled, total, clock, report })
    }

    /// Whether `cell`'s class has tripped its circuit breaker.
    pub(crate) fn breaker_tripped(&self, breaker: &BTreeMap<String, u32>, cell: CellId) -> bool {
        breaker.get(&cell.class()).copied().unwrap_or(0) >= self.config.limits.breaker_threshold
    }

    /// Commit one cell: the only place supervision state (virtual
    /// clock, breaker counts) advances. Re-validates the breaker *at
    /// commit time* — a speculatively executed cell whose class was
    /// quarantined past its threshold by an earlier-committing cell is
    /// discarded here and recorded as [`CellStatus::SkippedByBreaker`],
    /// which is what makes worker-count-independence structural rather
    /// than incidental. The shard-merge step funnels every shard's
    /// journaled works through here in canonical order, which is why a
    /// merged journal is byte-identical to a serial one.
    pub(crate) fn commit_cell(
        &self,
        cell: CellId,
        work: Option<CellWork>,
        clock: &mut u64,
        breaker: &mut BTreeMap<String, u32>,
    ) -> CellRecord {
        let clock_start = *clock;
        let work = match work {
            Some(work) if !self.breaker_tripped(breaker, cell) => work,
            // Either the serial path never executed the cell, or the
            // parallel path executed it speculatively and the breaker
            // tripped before its commit slot: both commit as skipped.
            _ => {
                return CellRecord {
                    cell,
                    status: CellStatus::SkippedByBreaker,
                    attempts: Vec::new(),
                    result: None,
                    faults: FaultTally::zero(),
                    clock_start,
                    clock_end: clock_start,
                }
            }
        };
        let status = if work.result.is_some() {
            CellStatus::Completed
        } else {
            *breaker.entry(cell.class()).or_insert(0) += 1;
            CellStatus::Quarantined
        };
        *clock += work.ticks;
        CellRecord {
            cell,
            status,
            attempts: work.attempts,
            result: work.result,
            faults: work.faults,
            clock_start,
            clock_end: *clock,
        }
    }

    /// Execute one cell to completion or retry exhaustion. Pure
    /// function of the cell id (all RNG streams derive from the cell
    /// key), deliberately ignorant of the clock and the breaker — those
    /// belong to [`Sweep::commit_cell`]. That purity is also what makes
    /// memoizing the whole result sound: a warm [`crate::cache::CellMemo`]
    /// hit replays the identical [`CellWork`] without re-running the
    /// session.
    pub(crate) fn execute_cell(&self, cell: CellId) -> CellWork {
        if let Some(memo) = &self.memo {
            if let Some(work) = memo.lookup_work(cell) {
                return work;
            }
        }
        let work = self.execute_cell_uncached(cell);
        if let Some(memo) = &self.memo {
            memo.store_work(cell, &work);
        }
        work
    }

    /// The un-memoized cell execution.
    fn execute_cell_uncached(&self, cell: CellId) -> CellWork {
        let limits = self.config.limits;
        let mut harness_faults =
            FaultPlan::new(cell.profile, derive_seed(cell, 0, SALT_HARNESS)).injector();
        let mut pending: Vec<FaultId> = Vec::new();
        let mut attempts = Vec::new();
        let mut result = None;
        let mut tally = FaultTally::zero();
        let mut ticks = 0u64;
        for attempt in 0..limits.max_attempts {
            let (verdict, steps, outcome) =
                self.run_attempt(cell, attempt, &mut harness_faults, &mut pending, &mut tally);
            ticks += steps;
            let done = verdict == AttemptVerdict::Completed;
            let backoff = if done || attempt + 1 == limits.max_attempts {
                0
            } else {
                limits.backoff(attempt)
            };
            ticks += backoff;
            attempts.push(AttemptRecord { attempt, verdict, steps, backoff });
            if done {
                result = outcome;
                break;
            }
        }
        if result.is_some() {
            // The retries absorbed whatever the harness injected.
            for id in pending.drain(..) {
                harness_faults.absorb(id);
            }
        }
        tally.add(&harness_faults.report());
        CellWork { attempts, result, faults: tally, ticks }
    }

    /// Run one attempt under panic isolation and the step deadline.
    // effect-allow(Panic): injected-crash simulation — the panic is
    // raised and caught inside this function's own catch_unwind.
    fn run_attempt(
        &self,
        cell: CellId,
        attempt: u32,
        harness: &mut FaultInjector,
        pending: &mut Vec<FaultId>,
        tally: &mut FaultTally,
    ) -> (AttemptVerdict, u64, Option<CellResult>) {
        let limits = self.config.limits;
        let panic_fault = harness.roll(FaultSite::Harness, FaultKind::TaskPanic);
        let wedge_fault = if panic_fault.is_none() {
            harness.roll(FaultSite::Harness, FaultKind::TaskWedge)
        } else {
            None
        };
        if let Some(id) = panic_fault {
            pending.push(id);
        }
        if let Some(id) = wedge_fault {
            pending.push(id);
        }
        let wedged = wedge_fault.is_some();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if panic_fault.is_some() {
                std::panic::panic_any(InjectedCrash { attempt });
            }
            if wedged {
                // The task never finishes; the deadline reaps it below.
                return None;
            }
            let mut injector =
                FaultPlan::new(cell.profile, derive_seed(cell, attempt, SALT_FAULTS)).injector();
            // The participant preset is oracle-side and seed-independent:
            // every cell of the (system, style) class shares one, so a
            // memo hit skips rebuilding it per attempt.
            let participant = match &self.memo {
                Some(memo) => memo.participant(cell),
                None => cell.participant(),
            };
            let report = ReproductionSession::new(
                participant,
                derive_seed(cell, attempt, SALT_SESSION),
            )
            .run_with_faults(&mut injector);
            Some((report, injector.report()))
        }));
        match outcome {
            Err(payload) => {
                if payload.downcast_ref::<InjectedCrash>().is_none() {
                    // Not one of ours: a genuine harness/session bug.
                    resume_unwind(payload);
                }
                // A crash is cheap in virtual time: the task died early.
                (AttemptVerdict::Panicked, 1, None)
            }
            Ok(None) => (AttemptVerdict::DeadlineExceeded, limits.deadline_steps, None),
            Ok(Some((report, fault_report))) => {
                tally.add(&fault_report);
                let steps = report.total_prompts() as u64;
                if steps > limits.deadline_steps {
                    // The session overran its budget; charge the budget
                    // (the reaper fires at the deadline, not after).
                    return (AttemptVerdict::DeadlineExceeded, limits.deadline_steps, None);
                }
                let (gate_errors, gate_warnings) = match &self.gate {
                    Some(gate) => {
                        // The spec is shared per system when a memo is
                        // attached instead of being rebuilt per attempt.
                        let g = match &self.memo {
                            Some(memo) => {
                                gate(&memo.spec(cell.system), &report.component_artifacts)
                            }
                            None => {
                                gate(&PaperSpec::for_system(cell.system), &report.component_artifacts)
                            }
                        };
                        if g.rejects() {
                            return (AttemptVerdict::GateRejected, steps, None);
                        }
                        (g.errors as u64, g.warnings as u64)
                    }
                    None => (0, 0),
                };
                // Non-paper scales additionally verify a seeded
                // fat-tree fabric and fingerprint the verdicts; a
                // verification failure fails the attempt like a
                // rejecting gate.
                let dpv_digest = match self.verify_scale(cell, attempt) {
                    Ok(digest) => digest,
                    Err(_) => return (AttemptVerdict::GateRejected, steps, None),
                };
                let words = report.total_words();
                let loc = u64::from(report.artifact.loc);
                let result = CellResult {
                    participant: report.participant,
                    prompts: steps,
                    words,
                    loc,
                    residual_defects: report.residual_defects,
                    gate_errors,
                    gate_warnings,
                    dpv_digest,
                };
                (AttemptVerdict::Completed, steps, Some(result))
            }
        }
    }

    /// Run the cell's scale-dimension verification: nothing at
    /// [`TopoScale::Paper`], otherwise a partitioned DPV pass over the
    /// cell's seeded fat-tree. A pure function of `(cell, attempt)` —
    /// the fabric seed derives from the cell key via its own salt, the
    /// churn level from the fault profile — so memoized, sharded and
    /// parallel runs all reproduce the same digest. Runs serially
    /// (`partitions: 2, workers: 1`) inside the cell; cross-cell
    /// parallelism belongs to the pool.
    // effect-allow(GlobalState): the partitioned DPV runner drives the
    // worker pool (atomic stat counters, channels, scoped threads), but
    // its merged verdict stream commits in canonical partition order —
    // byte-identical at every worker count, so nothing global is
    // observable in the digest; the cell stays a pure function of
    // (CellId, attempt).
    fn verify_scale(&self, cell: CellId, attempt: u32) -> Result<Option<String>, String> {
        let TopoScale::FatTree { k } = cell.scale else {
            return Ok(None);
        };
        let fab_seed = derive_seed(cell, attempt, SALT_FABRIC);
        let link_down = match cell.profile {
            FaultProfile::None => 0,
            _ => 2 + (fab_seed % 11) as usize,
        };
        let spec = crate::dpv_scale::DpvScaleSpec {
            k: k as usize,
            seed: fab_seed,
            link_down,
            queries: Some(2),
            partitions: 2,
            workers: 1,
            node_cap: None,
        };
        let report = crate::dpv_scale::run_spec(&spec).map_err(|e| e.to_string())?;
        Ok(Some(format!("{:016x}", report.digest)))
    }

    /// Fold the records into the final report.
    pub(crate) fn assemble(&self, records: Vec<CellRecord>, clock: u64) -> SweepReport {
        let mut coverage = Coverage {
            total: records.len() as u64,
            attempted: 0,
            completed: 0,
            quarantined: 0,
            skipped_by_breaker: 0,
        };
        let mut faults = FaultTally::zero();
        let mut quarantine = Vec::new();
        let mut by_class: BTreeMap<String, u64> = BTreeMap::new();
        for r in &records {
            faults.merge(&r.faults);
            match r.status {
                CellStatus::Completed => {
                    coverage.attempted += 1;
                    coverage.completed += 1;
                }
                CellStatus::Quarantined => {
                    coverage.attempted += 1;
                    coverage.quarantined += 1;
                    *by_class.entry(r.cell.class()).or_insert(0) += 1;
                    quarantine.push(QuarantineEntry {
                        cell: r.cell,
                        attempts: r.attempts.len() as u64,
                        last_verdict: r.attempts.last().map(|a| a.verdict),
                    });
                }
                CellStatus::SkippedByBreaker => coverage.skipped_by_breaker += 1,
            }
        }
        let threshold = u64::from(self.config.limits.breaker_threshold);
        let breakers = by_class
            .into_iter()
            .map(|(class, quarantined)| BreakerEntry {
                class,
                quarantined,
                tripped: quarantined >= threshold,
            })
            .collect();
        SweepReport {
            fingerprint: self.config.fingerprint(),
            config: self.config.clone(),
            coverage,
            clock_ticks: clock,
            faults,
            quarantine,
            breakers,
            cells: records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SweepConfig {
        SweepConfig {
            systems: vec![TargetSystem::RockPaperScissors, TargetSystem::NcFlow],
            styles: vec![PromptStyle::ModularText],
            seeds: vec![0],
            profiles: vec![FaultProfile::None, FaultProfile::Chaos],
            scales: vec![TopoScale::Paper],
            limits: TaskLimits::default(),
        }
    }

    #[test]
    fn expansion_is_canonical_and_complete() {
        let cfg = SweepConfig::default();
        let cells = cfg.expand();
        assert_eq!(cells.len(), cfg.total_cells());
        assert_eq!(cells.len(), 4 * 2 * 3 * 2);
        // First axis varies slowest.
        assert_eq!(cells[0].system, TargetSystem::NcFlow);
        assert_eq!(cells[0].profile, FaultProfile::None);
        assert_eq!(cells[1].profile, FaultProfile::Heavy);
        assert_eq!(cells.last().unwrap().system, TargetSystem::ApVerifier);
    }

    #[test]
    fn derived_seeds_do_not_collide_across_streams() {
        let cell = tiny_config().expand()[0];
        let a = derive_seed(cell, 0, SALT_SESSION);
        let b = derive_seed(cell, 0, SALT_FAULTS);
        let c = derive_seed(cell, 0, SALT_HARNESS);
        let d = derive_seed(cell, 1, SALT_SESSION);
        assert!(a != b && b != c && a != c && a != d);
    }

    #[test]
    fn straight_run_is_deterministic() {
        let run = || {
            let sweep = Sweep::new(tiny_config());
            let mut sink = MemoryJournal::new();
            let report = sweep.run(&mut sink).unwrap();
            (report.render_json(), sink.text().to_string())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn resume_at_every_prefix_is_byte_identical() {
        let cfg = tiny_config();
        let sweep = Sweep::new(cfg.clone());
        let mut full_sink = MemoryJournal::new();
        let full = sweep.run(&mut full_sink).unwrap();
        let full_json = full.render_json();
        let lines: Vec<&str> = full_sink.text().split_inclusive('\n').collect();
        for cut in 0..=lines.len() {
            let prefix: String = lines[..cut].concat();
            let replay = parse_journal(&prefix, &cfg).unwrap();
            assert!(!replay.dropped_partial, "clean prefix at cut {cut}");
            let mut sink = MemoryJournal::with_text(&prefix[..replay.valid_bytes as usize]);
            let resumed = sweep.run_from(&replay, &mut sink).unwrap();
            assert_eq!(resumed.render_json(), full_json, "cut at line {cut}");
            assert_eq!(sink.text(), full_sink.text(), "journal rebuilt at cut {cut}");
        }
    }

    #[test]
    fn torn_trailing_record_is_dropped_and_rerun() {
        let cfg = tiny_config();
        let sweep = Sweep::new(cfg.clone());
        let mut full_sink = MemoryJournal::new();
        let full = sweep.run(&mut full_sink).unwrap();
        let text = full_sink.text();
        // Hand-truncate: cut the final record in half, mid-line.
        let lines: Vec<&str> = text.split_inclusive('\n').collect();
        let keep: String = lines[..lines.len() - 1].concat();
        let torn = format!("{keep}{}", &lines[lines.len() - 1][..10]);
        let replay = parse_journal(&torn, &cfg).unwrap();
        assert!(replay.dropped_partial);
        assert_eq!(replay.records.len(), cfg.total_cells() - 1);
        assert_eq!(replay.valid_bytes as usize, keep.len());
        let mut sink = MemoryJournal::with_text(&keep);
        let resumed = sweep.run_from(&replay, &mut sink).unwrap();
        assert_eq!(resumed.render_json(), full.render_json());
        assert_eq!(sink.text(), text);
    }

    #[test]
    fn corrupt_trailing_record_with_newline_is_dropped() {
        let cfg = tiny_config();
        let sweep = Sweep::new(cfg.clone());
        let mut sink = MemoryJournal::new();
        sweep.run(&mut sink).unwrap();
        let lines: Vec<&str> = sink.text().split_inclusive('\n').collect();
        let keep: String = lines[..lines.len() - 1].concat();
        let corrupt = format!("{keep}{{\"index\": garbage\n");
        let replay = parse_journal(&corrupt, &cfg).unwrap();
        assert!(replay.dropped_partial);
        assert_eq!(replay.records.len(), cfg.total_cells() - 1);
    }

    #[test]
    fn corrupt_middle_record_is_rejected() {
        let cfg = tiny_config();
        let sweep = Sweep::new(cfg.clone());
        let mut sink = MemoryJournal::new();
        sweep.run(&mut sink).unwrap();
        let mut lines: Vec<String> =
            sink.text().split_inclusive('\n').map(str::to_string).collect();
        lines[1] = "{\"index\": garbage}\n".to_string();
        let damaged: String = lines.concat();
        match parse_journal(&damaged, &cfg) {
            Err(JournalError::Corrupt { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn mismatched_config_is_rejected() {
        let cfg = tiny_config();
        let sweep = Sweep::new(cfg.clone());
        let mut sink = MemoryJournal::new();
        sweep.run(&mut sink).unwrap();
        let mut other = cfg.clone();
        other.seeds = vec![0, 1];
        match parse_journal(sink.text(), &other) {
            Err(JournalError::Mismatch { field: MismatchField::Fingerprint, .. }) => {}
            other => panic!("expected a fingerprint Mismatch, got {other:?}"),
        }
    }

    #[test]
    fn mismatch_errors_name_the_field_and_a_remedy() {
        let cfg = tiny_config();
        let sweep = Sweep::new(cfg.clone());
        let mut sink = MemoryJournal::new();
        sweep.run(&mut sink).unwrap();
        let header_line = sink.text().split_inclusive('\n').next().unwrap();
        let mut header: JournalHeader = serde_json::from_str(header_line.trim_end()).unwrap();
        header.version = JOURNAL_VERSION + 1;
        let doctored = format!("{}\n", serde_json::to_string(&header).unwrap());
        let err = parse_journal(&doctored, &cfg).unwrap_err();
        match &err {
            JournalError::Mismatch { field: MismatchField::Version, found, expected } => {
                assert_eq!(found, &(JOURNAL_VERSION + 1).to_string());
                assert_eq!(expected, &JOURNAL_VERSION.to_string());
            }
            other => panic!("expected a version Mismatch, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("journal mismatch: version"), "{msg}");
        assert!(msg.contains("incompatible build"), "mismatch must carry a remedy: {msg}");

        let mut cached = serde_json::from_str::<JournalHeader>(header_line.trim_end()).unwrap();
        cached.cache = "cellmemo-v0/other".to_string();
        let doctored = format!("{}\n", serde_json::to_string(&cached).unwrap());
        match parse_journal(&doctored, &cfg) {
            Err(JournalError::Mismatch { field: MismatchField::CacheScheme, .. }) => {}
            other => panic!("expected a cache-scheme Mismatch, got {other:?}"),
        }
    }

    #[test]
    fn chaos_sweep_quarantines_and_coverage_sums() {
        let cfg = SweepConfig {
            profiles: vec![FaultProfile::Chaos],
            seeds: (0..4).collect(),
            ..SweepConfig::default()
        };
        let sweep = Sweep::new(cfg);
        let mut sink = MemoryJournal::new();
        let report = sweep.run(&mut sink).unwrap();
        assert!(report.coverage.consistent(), "{:?}", report.coverage);
        assert!(
            !report.quarantine.is_empty(),
            "chaos must quarantine at least one cell: {:?}",
            report.coverage
        );
        assert_eq!(report.quarantine.len() as u64, report.coverage.quarantined);
        assert!(report.faults.injected > 0);
    }

    #[test]
    fn none_profile_without_gate_completes_everything() {
        let mut cfg = tiny_config();
        cfg.profiles = vec![FaultProfile::None];
        let sweep = Sweep::new(cfg.clone());
        let mut sink = MemoryJournal::new();
        let report = sweep.run(&mut sink).unwrap();
        assert_eq!(report.coverage.completed, cfg.total_cells() as u64);
        assert_eq!(report.faults.injected, 0);
        for cell in &report.cells {
            assert_eq!(cell.attempts.len(), 1);
            assert_eq!(cell.attempts[0].verdict, AttemptVerdict::Completed);
        }
    }

    #[test]
    fn tight_deadline_quarantines_and_trips_breaker() {
        let mut cfg = tiny_config();
        cfg.systems = vec![TargetSystem::NcFlow];
        cfg.profiles = vec![FaultProfile::None];
        cfg.seeds = (0..5).collect();
        cfg.limits.deadline_steps = 5; // every session needs more prompts
        cfg.limits.breaker_threshold = 3;
        let sweep = Sweep::new(cfg.clone());
        let mut sink = MemoryJournal::new();
        let report = sweep.run(&mut sink).unwrap();
        assert!(report.coverage.consistent());
        assert_eq!(report.coverage.quarantined, 3);
        assert_eq!(report.coverage.skipped_by_breaker, 2);
        assert_eq!(report.breakers.len(), 1);
        assert!(report.breakers[0].tripped);
        for q in &report.quarantine {
            assert_eq!(q.last_verdict, Some(AttemptVerdict::DeadlineExceeded));
        }
        // Deadline attempts charge exactly the budget, plus backoff.
        let first = &report.cells[0];
        assert_eq!(first.attempts.len(), cfg.limits.max_attempts as usize);
        for a in &first.attempts {
            assert_eq!(a.steps, cfg.limits.deadline_steps);
        }
    }

    #[test]
    fn backoff_grows_and_caps() {
        let limits = TaskLimits {
            deadline_steps: 400,
            max_attempts: 8,
            backoff_base: 8,
            backoff_cap: 64,
            breaker_threshold: 3,
        };
        let seq: Vec<u64> = (0..8).map(|a| limits.backoff(a)).collect();
        assert_eq!(seq, vec![8, 16, 32, 64, 64, 64, 64, 64]);
    }

    #[test]
    fn backoff_saturates_at_cap_for_large_attempts() {
        // Regression: `8u64.checked_shl(61)` is `Some(0)` — the value
        // wraps while the shift amount is still < 64 — which used to
        // collapse the backoff to `min(0, cap) = 0` from attempt 61 on.
        let limits = TaskLimits {
            deadline_steps: 400,
            max_attempts: 128,
            backoff_base: 8,
            backoff_cap: 64,
            breaker_threshold: 3,
        };
        for attempt in 0..=70u32 {
            let got = limits.backoff(attempt);
            let want = if attempt >= 3 { 64 } else { 8u64 << attempt };
            assert_eq!(got, want, "attempt {attempt}");
            assert!(got > 0, "backoff must never collapse to 0 (attempt {attempt})");
        }
        // An enormous cap exposes the raw shift: the wrap point is
        // where saturation must kick in, not wrap to zero.
        let wide = TaskLimits { backoff_cap: u64::MAX, ..limits };
        assert_eq!(wide.backoff(60), 8 << 60);
        for attempt in 61..=70u32 {
            assert_eq!(wide.backoff(attempt), u64::MAX, "attempt {attempt}");
        }
        // Degenerate base: no backoff at all, at any attempt.
        let zero = TaskLimits { backoff_base: 0, ..limits };
        for attempt in 0..=70u32 {
            assert_eq!(zero.backoff(attempt), 0);
        }
    }

    #[test]
    fn parallel_run_matches_serial_bytes() {
        let mut cfg = tiny_config();
        cfg.seeds = vec![0, 1, 2];
        let serial = {
            let mut sink = MemoryJournal::new();
            let report = Sweep::new(cfg.clone()).run(&mut sink).unwrap();
            (report.render_json(), sink.text().to_string())
        };
        for workers in [2, 4, 8] {
            let mut sink = MemoryJournal::new();
            let report =
                Sweep::new(cfg.clone()).with_workers(workers).run(&mut sink).unwrap();
            assert_eq!(report.render_json(), serial.0, "report differs at workers={workers}");
            assert_eq!(sink.text(), serial.1, "journal differs at workers={workers}");
        }
    }

    #[test]
    fn parallel_commit_revalidates_breaker() {
        // Tight deadline: every cell quarantines until the breaker
        // trips, so the parallel run *speculatively executes* cells the
        // serial run never touches — commit-time re-validation must
        // discard them and record SkippedByBreaker identically.
        let mut cfg = tiny_config();
        cfg.systems = vec![TargetSystem::NcFlow];
        cfg.profiles = vec![FaultProfile::None];
        cfg.seeds = (0..6).collect();
        cfg.limits.deadline_steps = 5;
        cfg.limits.breaker_threshold = 3;
        let mut serial_sink = MemoryJournal::new();
        let serial = Sweep::new(cfg.clone()).run(&mut serial_sink).unwrap();
        assert!(serial.coverage.skipped_by_breaker > 0, "{:?}", serial.coverage);
        for workers in [2, 4, 8] {
            let mut sink = MemoryJournal::new();
            let report =
                Sweep::new(cfg.clone()).with_workers(workers).run(&mut sink).unwrap();
            assert_eq!(report.render_json(), serial.render_json(), "workers={workers}");
            assert_eq!(sink.text(), serial_sink.text(), "workers={workers}");
        }
    }

    /// A config whose breaker trips mid-class: 5 seeds of one class,
    /// threshold 3 — cells 0..2 quarantine, cells 3..4 are skipped.
    fn tripping_config() -> SweepConfig {
        let mut cfg = tiny_config();
        cfg.systems = vec![TargetSystem::NcFlow];
        cfg.profiles = vec![FaultProfile::None];
        cfg.seeds = (0..5).collect();
        cfg.limits.deadline_steps = 5;
        cfg.limits.breaker_threshold = 3;
        cfg
    }

    #[test]
    fn breaker_rebuild_is_exact_at_every_resume_point() {
        // Regression for the run_from breaker rebuild: resuming at any
        // prefix — including mid-class with the quarantine count at
        // threshold−1 — must neither skip a cell the live run executed
        // nor execute a cell the live run skipped.
        let cfg = tripping_config();
        let sweep = Sweep::new(cfg.clone());
        let mut full_sink = MemoryJournal::new();
        let full = sweep.run(&mut full_sink).unwrap();
        assert_eq!(full.coverage.quarantined, 3);
        assert_eq!(full.coverage.skipped_by_breaker, 2);
        let lines: Vec<&str> = full_sink.text().split_inclusive('\n').collect();
        for cut in 0..=lines.len() {
            let prefix: String = lines[..cut].concat();
            let replay = parse_journal(&prefix, &cfg).unwrap();
            let mut sink = MemoryJournal::with_text(&prefix);
            let resumed = sweep.run_from(&replay, &mut sink).unwrap();
            assert_eq!(resumed.render_json(), full.render_json(), "cut at line {cut}");
            assert_eq!(sink.text(), full_sink.text(), "journal rebuilt at cut {cut}");
        }
        // The threshold−1 landing specifically: two quarantines
        // replayed (header + 2 records), the breaker sits one short of
        // tripping, and the next executed cell must tip it over.
        let prefix: String = lines[..3].concat();
        let replay = parse_journal(&prefix, &cfg).unwrap();
        assert_eq!(
            replay.records.iter().filter(|r| r.status == CellStatus::Quarantined).count(),
            2
        );
        let mut sink = MemoryJournal::with_text(&prefix);
        let resumed = sweep.run_from(&replay, &mut sink).unwrap();
        assert_eq!(resumed.coverage.skipped_by_breaker, 2);
        assert_eq!(resumed.render_json(), full.render_json());
    }

    #[test]
    fn parallel_resume_matches_serial_resume_at_every_prefix() {
        let cfg = tripping_config();
        let sweep = Sweep::new(cfg.clone());
        let mut full_sink = MemoryJournal::new();
        let full = sweep.run(&mut full_sink).unwrap();
        let lines: Vec<&str> = full_sink.text().split_inclusive('\n').collect();
        let parallel = Sweep::new(cfg.clone()).with_workers(4);
        for cut in 0..=lines.len() {
            let prefix: String = lines[..cut].concat();
            let replay = parse_journal(&prefix, &cfg).unwrap();
            let mut sink = MemoryJournal::with_text(&prefix);
            let resumed = parallel.run_from(&replay, &mut sink).unwrap();
            assert_eq!(resumed.render_json(), full.render_json(), "cut at line {cut}");
            assert_eq!(sink.text(), full_sink.text(), "journal rebuilt at cut {cut}");
        }
    }

    #[test]
    fn torn_header_prefix_is_a_fresh_journal() {
        // A journal whose only content is a partial header line — the
        // process died mid-way through the very first append — must be
        // treated as empty (fresh header rewritten on resume), never as
        // a hard parse error.
        let cfg = tiny_config();
        let sweep = Sweep::new(cfg.clone());
        let mut full_sink = MemoryJournal::new();
        let full = sweep.run(&mut full_sink).unwrap();
        let header_line = full_sink.text().split_inclusive('\n').next().unwrap();
        // Every strict prefix of the header, newline excluded: torn.
        for cut in 1..header_line.len() - 1 {
            let torn = &header_line[..cut];
            let replay = parse_journal(torn, &cfg)
                .unwrap_or_else(|e| panic!("torn header prefix ({cut} bytes) must parse: {e}"));
            assert!(replay.dropped_partial, "cut {cut}");
            assert!(!replay.has_header, "cut {cut}");
            assert_eq!(replay.valid_bytes, 0, "cut {cut}");
            assert!(replay.records.is_empty(), "cut {cut}");
            // And the resume is a full, byte-identical fresh run.
            let mut sink = MemoryJournal::new();
            let resumed = sweep.run_from(&replay, &mut sink).unwrap();
            assert_eq!(resumed.render_json(), full.render_json(), "cut {cut}");
            assert_eq!(sink.text(), full_sink.text(), "cut {cut}");
        }
        // A *complete but unterminated* header (torn before the
        // newline) is also a fresh start — the record includes its
        // terminator.
        let unterminated = header_line.trim_end_matches('\n');
        let replay = parse_journal(unterminated, &cfg).unwrap();
        assert!(replay.dropped_partial && !replay.has_header);
        assert_eq!(replay.valid_bytes, 0);
    }

    #[test]
    fn newline_terminated_garbage_header_is_corrupt() {
        // A terminated garbage first line is damage, not a torn write
        // (torn appends never end in a newline): rejected outright.
        match parse_journal("not json at all\n", &tiny_config()) {
            Err(JournalError::Corrupt { line, .. }) => assert_eq!(line, 0),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn skipped_cells_cost_no_clock() {
        let mut cfg = tiny_config();
        cfg.systems = vec![TargetSystem::RockPaperScissors];
        cfg.profiles = vec![FaultProfile::None];
        cfg.seeds = (0..4).collect();
        cfg.limits.deadline_steps = 1;
        cfg.limits.breaker_threshold = 1;
        let sweep = Sweep::new(cfg);
        let mut sink = MemoryJournal::new();
        let report = sweep.run(&mut sink).unwrap();
        assert_eq!(report.coverage.quarantined, 1);
        assert_eq!(report.coverage.skipped_by_breaker, 3);
        for cell in report.cells.iter().filter(|c| c.status == CellStatus::SkippedByBreaker) {
            assert_eq!(cell.clock_start, cell.clock_end);
            assert!(cell.attempts.is_empty());
            assert_eq!(cell.faults, FaultTally::zero());
        }
    }

    #[test]
    fn gate_rejections_feed_quarantine() {
        // A gate that rejects everything: every cell must quarantine
        // with GateRejected and the coverage must still sum.
        let cfg = tiny_config();
        let total = cfg.total_cells() as u64;
        let sweep = Sweep::new(cfg).with_gate(Box::new(|_, _| StaticGate {
            errors: 1,
            warnings: 0,
            worst: "always-reject".to_string(),
        }));
        let mut sink = MemoryJournal::new();
        let report = sweep.run(&mut sink).unwrap();
        assert!(report.coverage.consistent());
        assert_eq!(report.coverage.completed, 0);
        assert_eq!(report.coverage.quarantined + report.coverage.skipped_by_breaker, total);
        assert!(report
            .quarantine
            .iter()
            .any(|q| q.last_verdict == Some(AttemptVerdict::GateRejected)));
    }

    #[test]
    fn real_panics_are_not_swallowed() {
        // A gate that panics with a non-injected payload simulates a
        // harness bug: run_from must propagate it, not journal it.
        let cfg = tiny_config();
        let sweep = Sweep::new(cfg).with_gate(Box::new(|_, _| {
            std::panic::panic_any("harness bug".to_string())
        }));
        let mut sink = MemoryJournal::new();
        let caught = catch_unwind(AssertUnwindSafe(|| sweep.run(&mut sink)));
        let payload = caught.expect_err("the bug must escape the harness");
        assert_eq!(payload.downcast_ref::<String>().map(String::as_str), Some("harness bug"));
    }

    #[test]
    fn journal_header_round_trips() {
        let h = JournalHeader {
            version: JOURNAL_VERSION,
            fingerprint: "00deadbeef00cafe".to_string(),
            total_cells: 48,
            cache: crate::cache::SCHEME.to_string(),
        };
        let line = json_line(&h).unwrap();
        assert!(line.ends_with('\n'));
        let back: JournalHeader = serde_json::from_str(line.trim_end()).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn empty_journal_text_is_a_fresh_run() {
        let replay = parse_journal("", &tiny_config()).unwrap();
        assert_eq!(replay, Replay::empty());
    }

    #[test]
    fn topo_scale_parse_inverts_name_and_rejects_bad_arities() {
        for scale in [TopoScale::Paper, TopoScale::FatTree { k: 4 }, TopoScale::FatTree { k: 16 }]
        {
            assert_eq!(TopoScale::parse(&scale.name()), Some(scale));
        }
        for bad in ["ft3", "ft12", "ft2", "ft64", "ft", "fat4", "", "ft08"] {
            assert_eq!(TopoScale::parse(bad), None, "{bad:?} must be rejected");
        }
    }

    #[test]
    fn pre_scale_journal_bytes_are_unchanged() {
        // Serialisation: every new field must vanish at its default, so
        // journals and fingerprints written before the scale axis
        // existed stay byte-identical.
        let cfg = tiny_config();
        let cfg_json = serde_json::to_string(&cfg).unwrap();
        assert!(!cfg_json.contains("scales"), "default scales must be omitted: {cfg_json}");
        let cell = cfg.expand()[0];
        let cell_json = serde_json::to_string(&cell).unwrap();
        assert!(!cell_json.contains("scale"), "paper scale must be omitted: {cell_json}");
        assert!(!cell.key().contains("paper"), "paper cells keep pre-scale keys");

        // Deserialisation: pre-scale JSON (no `scales`/`scale` keys)
        // parses to the defaults and round-trips to the same bytes.
        let back: SweepConfig = serde_json::from_str(&cfg_json).unwrap();
        assert_eq!(back, cfg);
        assert_eq!(back.scales, vec![TopoScale::Paper]);
        assert_eq!(serde_json::to_string(&back).unwrap(), cfg_json);
        let cell_back: CellId = serde_json::from_str(&cell_json).unwrap();
        assert_eq!(cell_back, cell);

        // And the fingerprint — the journal-header compatibility gate —
        // is exactly the pre-scale one for a pre-scale-shaped config.
        assert_eq!(cfg.fingerprint(), {
            let mut pre = cfg.clone();
            pre.scales = default_scales();
            pre.fingerprint()
        });
    }

    #[test]
    fn scale_cells_record_deterministic_dpv_digests() {
        let mut cfg = tiny_config();
        cfg.profiles = vec![FaultProfile::None, FaultProfile::Light];
        cfg.scales = vec![TopoScale::Paper, TopoScale::FatTree { k: 4 }];
        let run = |workers: usize| {
            let mut sink = MemoryJournal::new();
            let report =
                Sweep::new(cfg.clone()).with_workers(workers).run(&mut sink).unwrap();
            (report.render_json(), sink.text().to_string())
        };
        let serial = run(1);
        for workers in [2usize, 4] {
            assert_eq!(run(workers), serial, "scale sweep differs at workers={workers}");
        }
        // Paper cells carry no digest; completed fat-tree cells carry a
        // 16-hex one. Both kinds must be present in this matrix.
        let replay = parse_journal(&serial.1, &cfg).unwrap();
        let mut paper = 0usize;
        let mut ft = 0usize;
        for rec in &replay.records {
            let digest = rec.result.as_ref().and_then(|r| r.dpv_digest.as_deref());
            match (rec.cell.scale, rec.status) {
                (TopoScale::Paper, _) => {
                    assert_eq!(digest, None, "paper cell with digest: {}", rec.cell.key());
                    paper += 1;
                }
                (TopoScale::FatTree { .. }, CellStatus::Completed) => {
                    let d = digest.expect("completed scale cell has a digest");
                    assert_eq!(d.len(), 16, "digest must be 16 hex chars: {d}");
                    assert!(d.bytes().all(|b| b.is_ascii_hexdigit()));
                    ft += 1;
                }
                (TopoScale::FatTree { .. }, _) => {}
            }
        }
        assert!(paper > 0 && ft > 0, "matrix must exercise both scales ({paper}/{ft})");
    }
}
