//! Seeded, deterministic fault injection across the reproduction
//! pipeline.
//!
//! Reproduction runs are long chains — prompt loops, LP solves, BDD
//! compilations, dataset generation, socket sessions — and the paper's
//! participants hit failures at every link: stalled ChatGPT sessions,
//! garbage responses, wedged solvers, exhausted BDD tables. This module
//! makes those failures *first-class and reproducible*: a
//! [`FaultPlan`] (profile + seed) drives a [`FaultInjector`] whose
//! fault trace is bit-identical across runs with the same plan, so a
//! crash under `--faults heavy --seed 7` is a crash anyone can replay.
//!
//! Design rules:
//!
//! * The injector owns its **own RNG stream**, separate from every
//!   simulation RNG. Under [`FaultProfile::None`] it performs **zero
//!   draws and zero injections**, so a `none` run is byte-identical to
//!   a run without the fault layer at all.
//! * Every injection is recorded in the trace as **escaped** until the
//!   resilience machinery explicitly absorbs it — unhandled faults are
//!   visible by default, not silently lost.
//! * Absorption mechanisms live in the layer that owns the failure
//!   (solver fallback in `lp`, node-cap growth in `bdd`/`dpv`, retry
//!   budgets here in `core`, timeouts/backoff in `rps`); this module
//!   only decides *when* to break things and keeps the ledger.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Where in the pipeline a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultSite {
    /// The simulated LLM's response channel.
    LlmResponse,
    /// The interactive session itself (stalls, lost turns).
    Session,
    /// The LP solver layer.
    LpSolver,
    /// The BDD node table.
    BddTable,
    /// The synthesised FIB dataset.
    DpvDataset,
    /// The RPS socket pair.
    RpsSocket,
    /// The sweep harness supervising a task (crash/wedge of a whole
    /// matrix cell, as opposed to a failure inside the session).
    Harness,
    /// A worker thread in the parallel sweep pool (the machinery
    /// *around* a cell, as opposed to the cell's own supervision).
    Worker,
    /// A shard process in the sharded sweep runtime (a whole OS
    /// process dying or stalling, as opposed to a worker thread
    /// inside it).
    Shard,
    /// The serve daemon's admission/scheduling layer (hostile or
    /// broken clients, duplicate submissions, jobs that panic a
    /// scheduler worker).
    Serve,
}

impl FaultSite {
    /// Stable lowercase name (used in reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::LlmResponse => "llm-response",
            FaultSite::Session => "session",
            FaultSite::LpSolver => "lp-solver",
            FaultSite::BddTable => "bdd-table",
            FaultSite::DpvDataset => "dpv-dataset",
            FaultSite::RpsSocket => "rps-socket",
            FaultSite::Harness => "harness",
            FaultSite::Worker => "worker",
            FaultSite::Shard => "shard",
            FaultSite::Serve => "serve",
        }
    }

    /// Every site, in report order.
    pub const ALL: [FaultSite; 10] = [
        FaultSite::LlmResponse,
        FaultSite::Session,
        FaultSite::LpSolver,
        FaultSite::BddTable,
        FaultSite::DpvDataset,
        FaultSite::RpsSocket,
        FaultSite::Harness,
        FaultSite::Worker,
        FaultSite::Shard,
        FaultSite::Serve,
    ];
}

/// What kind of failure is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The LLM returned a truncated artifact (half the code, and it
    /// does not compile).
    TruncatedResponse,
    /// The LLM returned unusable garbage; the artifact must be
    /// regenerated.
    GarbageResponse,
    /// The session stalled; the prompt was spent but no response
    /// arrived.
    StalledSession,
    /// The primary LP solver stalls numerically (iteration cap hit).
    SolverStall,
    /// The LP iteration count explodes on the reproduced path.
    IterationExplosion,
    /// The BDD node table runs out of its configured capacity.
    TableExhaustion,
    /// A topology link goes dark without FIB convergence.
    LinkCorruption,
    /// FIB rules are corrupted in place.
    FibCorruption,
    /// A datagram or connection is dropped.
    SocketDrop,
    /// A socket read stalls past its deadline.
    SocketTimeout,
    /// A malformed frame arrives on the wire.
    MalformedFrame,
    /// A whole sweep task crashes (the harness catches the panic).
    TaskPanic,
    /// A whole sweep task wedges and never finishes (the harness's
    /// step-budget deadline reaps it).
    TaskWedge,
    /// A pool worker dies while holding a cell; the pool re-executes
    /// the cell, so the committed outcome is unchanged.
    WorkerCrash,
    /// A pool worker is descheduled mid-cell, perturbing execution
    /// order (but never commit order).
    WorkerStall,
    /// A shard process dies (SIGKILL-equivalent) before journaling its
    /// next cell; the coordinator re-leases the unfinished range.
    ShardCrash,
    /// A shard process is descheduled between cells, delaying its
    /// journal appends (but never changing their content).
    ShardStall,
    /// A client trickles a frame one byte at a time and never finishes
    /// it; the daemon's per-connection read deadline reaps it.
    SlowLoris,
    /// A client disconnects mid-frame; the daemon drops the partial
    /// frame and the connection, never the job state.
    MidFrameDisconnect,
    /// The same submission arrives twice (a client retried a SUBMIT
    /// whose first copy was delivered); admission deduplicates by
    /// nonce instead of double-running the job.
    DuplicateSubmit,
    /// A job whose execution panics the scheduler worker running it;
    /// the worker absorbs the panic and fails only that job.
    PoisonJob,
}

impl FaultKind {
    /// Stable lowercase name (used in reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TruncatedResponse => "truncated-response",
            FaultKind::GarbageResponse => "garbage-response",
            FaultKind::StalledSession => "stalled-session",
            FaultKind::SolverStall => "solver-stall",
            FaultKind::IterationExplosion => "iteration-explosion",
            FaultKind::TableExhaustion => "table-exhaustion",
            FaultKind::LinkCorruption => "link-corruption",
            FaultKind::FibCorruption => "fib-corruption",
            FaultKind::SocketDrop => "socket-drop",
            FaultKind::SocketTimeout => "socket-timeout",
            FaultKind::MalformedFrame => "malformed-frame",
            FaultKind::TaskPanic => "task-panic",
            FaultKind::TaskWedge => "task-wedge",
            FaultKind::WorkerCrash => "worker-crash",
            FaultKind::WorkerStall => "worker-stall",
            FaultKind::ShardCrash => "shard-crash",
            FaultKind::ShardStall => "shard-stall",
            FaultKind::SlowLoris => "slow-loris",
            FaultKind::MidFrameDisconnect => "mid-frame-disconnect",
            FaultKind::DuplicateSubmit => "duplicate-submit",
            FaultKind::PoisonJob => "poison-job",
        }
    }
}

/// How aggressively to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultProfile {
    /// No faults, no RNG draws: byte-identical to the unfaulted run.
    None,
    /// Rare faults — every one should be absorbed.
    Light,
    /// Frequent faults — retry budgets get exercised hard.
    Heavy,
    /// Most operations fault — for probing escape paths.
    Chaos,
}

impl FaultProfile {
    /// Parse a CLI profile name.
    pub fn parse(s: &str) -> Option<FaultProfile> {
        match s.to_ascii_lowercase().as_str() {
            "none" => Some(FaultProfile::None),
            "light" => Some(FaultProfile::Light),
            "heavy" => Some(FaultProfile::Heavy),
            "chaos" => Some(FaultProfile::Chaos),
            _ => None,
        }
    }

    /// The profile's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            FaultProfile::None => "none",
            FaultProfile::Light => "light",
            FaultProfile::Heavy => "heavy",
            FaultProfile::Chaos => "chaos",
        }
    }

    /// Injection probability for one roll of `kind`.
    pub fn rate(self, kind: FaultKind) -> f64 {
        let base = match self {
            FaultProfile::None => return 0.0,
            FaultProfile::Light => 0.04,
            FaultProfile::Heavy => 0.25,
            FaultProfile::Chaos => 0.6,
        };
        // Session stalls are the paper's most-reported failure; solver
        // and table faults are rarer but costlier.
        let weight: f64 = match kind {
            FaultKind::StalledSession => 1.5,
            FaultKind::GarbageResponse | FaultKind::TruncatedResponse => 1.0,
            FaultKind::SolverStall | FaultKind::IterationExplosion => 0.8,
            FaultKind::TableExhaustion => 0.8,
            FaultKind::LinkCorruption | FaultKind::FibCorruption => 0.6,
            FaultKind::SocketDrop | FaultKind::SocketTimeout | FaultKind::MalformedFrame => 1.0,
            // Whole-task crashes/wedges are rarer than in-session
            // failures but cost a full attempt each.
            FaultKind::TaskPanic => 0.6,
            FaultKind::TaskWedge => 0.5,
            // Worker-site faults strike the pool machinery itself; the
            // pool must absorb them without touching any cell outcome.
            FaultKind::WorkerCrash => 0.4,
            FaultKind::WorkerStall => 0.5,
            // Shard-site faults kill or stall a whole OS process; kept
            // rare so a chaos matrix cannot exhaust the coordinator's
            // restart cap on its own.
            FaultKind::ShardCrash => 0.15,
            FaultKind::ShardStall => 0.3,
            // Serve-site faults model hostile or broken clients plus
            // poisoned jobs; duplicates and slow clients are common,
            // poison jobs rare (each one costs a whole job slot).
            FaultKind::SlowLoris => 0.5,
            FaultKind::MidFrameDisconnect => 0.5,
            FaultKind::DuplicateSubmit => 0.6,
            FaultKind::PoisonJob => 0.2,
        };
        (base * weight).min(0.95)
    }
}

/// A complete, replayable description of a fault run: the profile and
/// the seed of the injector's private RNG stream. Same plan ⇒
/// bit-identical fault trace for the same sequence of rolls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Injection aggressiveness.
    pub profile: FaultProfile,
    /// Seed of the injector's own RNG stream.
    pub seed: u64,
}

impl FaultPlan {
    /// A plan.
    pub fn new(profile: FaultProfile, seed: u64) -> Self {
        FaultPlan { profile, seed }
    }

    /// The no-fault plan.
    pub fn none() -> Self {
        FaultPlan { profile: FaultProfile::None, seed: 0 }
    }

    /// Parse a CLI `--faults` value. Errors name the valid profiles.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        match FaultProfile::parse(spec) {
            Some(profile) => Ok(FaultPlan { profile, seed }),
            None => Err(format!(
                "unknown fault profile '{spec}' (expected none|light|heavy|chaos)"
            )),
        }
    }

    /// Build the injector for this plan.
    pub fn injector(self) -> FaultInjector {
        FaultInjector::new(self)
    }
}

/// Final state of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultOutcome {
    /// The resilience machinery recovered (retry, fallback, regrow…).
    Absorbed,
    /// Nothing recovered it; the fault reached the caller.
    Escaped,
}

/// One injected fault, in injection order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// 0-based injection sequence number.
    pub seq: u64,
    /// Where it struck.
    pub site: FaultSite,
    /// What it was.
    pub kind: FaultKind,
    /// Whether it was absorbed.
    pub outcome: FaultOutcome,
}

/// Handle to a just-injected fault; pass back to
/// [`FaultInjector::absorb`] once recovery succeeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a rolled fault defaults to Escaped unless absorbed"]
pub struct FaultId(usize);

/// The injector: decides when to break things, keeps the trace.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    events: Vec<FaultEvent>,
}

impl FaultInjector {
    /// An injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan, rng: StdRng::seed_from_u64(plan.seed), events: Vec::new() }
    }

    /// The always-quiet injector ([`FaultProfile::None`]).
    pub fn disabled() -> Self {
        Self::new(FaultPlan::none())
    }

    /// The plan this injector runs.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Whether this injector can ever fire.
    pub fn enabled(&self) -> bool {
        self.plan.profile != FaultProfile::None
    }

    /// Roll the dice for one `(site, kind)` boundary crossing. Returns
    /// a handle when the fault fires. Under [`FaultProfile::None`] this
    /// returns immediately without touching the RNG.
    pub fn roll(&mut self, site: FaultSite, kind: FaultKind) -> Option<FaultId> {
        let p = self.plan.profile.rate(kind);
        if p <= 0.0 {
            return None;
        }
        if self.rng.random::<f64>() >= p {
            return None;
        }
        let seq = self.events.len();
        self.events.push(FaultEvent {
            seq: seq as u64,
            site,
            kind,
            outcome: FaultOutcome::Escaped,
        });
        Some(FaultId(seq))
    }

    /// Mark a fault recovered.
    pub fn absorb(&mut self, id: FaultId) {
        self.events[id.0].outcome = FaultOutcome::Absorbed;
    }

    /// Number of faults injected so far (a checkpoint for
    /// [`FaultInjector::escaped_since`]).
    pub fn checkpoint(&self) -> usize {
        self.events.len()
    }

    /// Escaped faults injected at or after `checkpoint` — the signal
    /// the [`crate::framework::AutoEngineer`] escalates on.
    pub fn escaped_since(&self, checkpoint: usize) -> usize {
        self.events[checkpoint.min(self.events.len())..]
            .iter()
            .filter(|e| e.outcome == FaultOutcome::Escaped)
            .count()
    }

    /// The full trace, in injection order.
    pub fn trace(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Summarise into a [`ResilienceReport`].
    pub fn report(&self) -> ResilienceReport {
        let mut by_site = Vec::new();
        for site in FaultSite::ALL {
            let events = self.events.iter().filter(|e| e.site == site);
            let (mut injected, mut absorbed) = (0u64, 0u64);
            for e in events {
                injected += 1;
                if e.outcome == FaultOutcome::Absorbed {
                    absorbed += 1;
                }
            }
            if injected > 0 {
                by_site.push(SiteStats {
                    site: site.name().to_string(),
                    injected,
                    absorbed,
                    escaped: injected - absorbed,
                });
            }
        }
        let injected = self.events.len() as u64;
        let absorbed =
            self.events.iter().filter(|e| e.outcome == FaultOutcome::Absorbed).count() as u64;
        ResilienceReport {
            profile: self.plan.profile.name().to_string(),
            seed: self.plan.seed,
            injected,
            absorbed,
            escaped: injected - absorbed,
            by_site,
            trace: self.events.clone(),
        }
    }
}

/// Per-site fault counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteStats {
    /// Site name.
    pub site: String,
    /// Faults injected at this site.
    pub injected: u64,
    /// Faults absorbed at this site.
    pub absorbed: u64,
    /// Faults that escaped from this site.
    pub escaped: u64,
}

/// The ledger of a fault run: what was injected, what the resilience
/// machinery absorbed, and what escaped. `validate` prints it and
/// `diagnosis` classifies it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// Profile name of the plan.
    pub profile: String,
    /// Seed of the plan.
    pub seed: u64,
    /// Total faults injected.
    pub injected: u64,
    /// Faults recovered by retries/fallbacks/regrowth.
    pub absorbed: u64,
    /// Faults that reached the caller.
    pub escaped: u64,
    /// Per-site breakdown (sites with no injections are omitted).
    pub by_site: Vec<SiteStats>,
    /// Full trace in injection order.
    pub trace: Vec<FaultEvent>,
}

impl ResilienceReport {
    /// Fraction of injected faults that were absorbed (1.0 when
    /// nothing was injected).
    pub fn absorption_rate(&self) -> f64 {
        if self.injected == 0 {
            return 1.0;
        }
        self.absorbed as f64 / self.injected as f64
    }
}

/// How many recoveries a single operation may consume before the
/// fault is allowed to escape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries per guarded operation.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Two retries mirrors what the paper's participants actually
        // did with a stalled ChatGPT session: re-send, re-send again,
        // then give up and re-plan.
        RetryPolicy { max_retries: 2 }
    }
}

impl RetryPolicy {
    /// A fresh budget under this policy.
    pub fn budget(self) -> RetryBudget {
        RetryBudget { remaining: self.max_retries, used: 0 }
    }
}

/// A draining retry budget. [`RetryBudget::try_consume`] never lets
/// `used` exceed the policy's `max_retries`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryBudget {
    remaining: u32,
    used: u32,
}

impl RetryBudget {
    /// Take one retry if any remain; `false` means the budget is dry
    /// and the fault must escape.
    pub fn try_consume(&mut self) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        self.used += 1;
        true
    }

    /// Retries consumed so far.
    pub fn used(&self) -> u32 {
        self.used
    }

    /// Retries still available.
    pub fn remaining(&self) -> u32 {
        self.remaining
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roll_sequence(inj: &mut FaultInjector) {
        for _ in 0..200 {
            if let Some(f) = inj.roll(FaultSite::Session, FaultKind::StalledSession) {
                inj.absorb(f);
            }
            let _ = inj.roll(FaultSite::LpSolver, FaultKind::SolverStall);
            let _ = inj.roll(FaultSite::BddTable, FaultKind::TableExhaustion);
        }
    }

    #[test]
    fn same_plan_same_trace() {
        let mk = || {
            let mut inj = FaultPlan::new(FaultProfile::Heavy, 99).injector();
            roll_sequence(&mut inj);
            inj.report()
        };
        assert_eq!(mk(), mk(), "trace must be bit-identical for the same plan");
    }

    #[test]
    fn different_seed_different_trace() {
        let run = |seed| {
            let mut inj = FaultPlan::new(FaultProfile::Heavy, seed).injector();
            roll_sequence(&mut inj);
            inj.report().trace
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn none_profile_never_fires_and_never_draws() {
        let mut inj = FaultInjector::disabled();
        for _ in 0..1000 {
            assert!(inj.roll(FaultSite::LlmResponse, FaultKind::GarbageResponse).is_none());
        }
        assert!(!inj.enabled());
        let r = inj.report();
        assert_eq!((r.injected, r.absorbed, r.escaped), (0, 0, 0));
        assert!(r.by_site.is_empty());
        assert_eq!(r.absorption_rate(), 1.0);
    }

    #[test]
    fn unabsorbed_faults_count_as_escaped() {
        let mut inj = FaultPlan::new(FaultProfile::Chaos, 5).injector();
        let mut first = None;
        while first.is_none() {
            first = inj.roll(FaultSite::RpsSocket, FaultKind::SocketDrop);
        }
        let r = inj.report();
        assert_eq!(r.escaped, r.injected);
        assert_eq!(r.by_site.len(), 1);
        assert_eq!(r.by_site[0].site, "rps-socket");
        let _ = first;
    }

    #[test]
    fn checkpoints_scope_escape_counts() {
        let mut inj = FaultPlan::new(FaultProfile::Chaos, 5).injector();
        while inj.roll(FaultSite::Session, FaultKind::StalledSession).is_none() {}
        let cp = inj.checkpoint();
        assert_eq!(inj.escaped_since(cp), 0, "nothing injected after the checkpoint yet");
        while inj.roll(FaultSite::Session, FaultKind::StalledSession).is_none() {}
        assert_eq!(inj.escaped_since(cp), 1);
        assert!(inj.escaped_since(0) >= 2);
    }

    #[test]
    fn retry_budget_is_bounded() {
        let mut b = RetryPolicy { max_retries: 3 }.budget();
        let mut granted = 0;
        for _ in 0..100 {
            if b.try_consume() {
                granted += 1;
            }
        }
        assert_eq!(granted, 3);
        assert_eq!(b.used(), 3);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn profile_parsing_round_trips() {
        for p in [FaultProfile::None, FaultProfile::Light, FaultProfile::Heavy, FaultProfile::Chaos] {
            assert_eq!(FaultProfile::parse(p.name()), Some(p));
        }
        assert_eq!(FaultProfile::parse("NONE"), Some(FaultProfile::None));
        assert!(FaultProfile::parse("medium").is_none());
        let err = FaultPlan::parse("medium", 0).unwrap_err();
        assert!(err.contains("none|light|heavy|chaos"), "{err}");
    }

    #[test]
    fn report_serialises_and_round_trips() {
        let mut inj = FaultPlan::new(FaultProfile::Heavy, 11).injector();
        roll_sequence(&mut inj);
        let r = inj.report();
        let json = serde_json::to_string(&r).unwrap();
        let back: ResilienceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
