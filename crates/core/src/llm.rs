//! The simulated LLM.
//!
//! A seeded stochastic model of a ChatGPT-class code generator, with
//! exactly the behavioural regularities the paper's §3.3 lessons report:
//!
//! * **Monolithic prompts fail**: defect rates blow up when one prompt
//!   asks for a whole multi-component system.
//! * **Pseudocode stabilises data types**: once the key data types are
//!   pinned by pseudocode-based prompts, later components interoperate;
//!   text-only prompting yields interop mismatches discovered at
//!   integration time.
//! * **Three debugging guidelines**: pasting a compiler/runtime error
//!   fixes type errors; sending a failing test case fixes simple logic
//!   bugs; step-by-step re-specification fixes complex logic bugs.

use crate::paper::ComponentSpec;
use crate::prompt::PromptStyle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The defect taxonomy of §3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DefectKind {
    /// Wrong/mismatched data types — surfaces as a compile/runtime error.
    TypeError,
    /// Component disagrees with its peers on shared data structures —
    /// surfaces at integration.
    InteropMismatch,
    /// A simple logic bug — surfaces on a small test case.
    SimpleLogic,
    /// A complex logic bug — needs step-by-step re-specification.
    ComplexLogic,
}

/// A generated implementation of one component.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CodeArtifact {
    /// Which component (index into the paper spec).
    pub component: usize,
    /// Generated lines of code.
    pub loc: u32,
    /// Latent defects (not all are visible immediately).
    pub defects: Vec<DefectKind>,
}

impl CodeArtifact {
    /// Whether a defect of `kind` is present.
    pub fn has(&self, kind: DefectKind) -> bool {
        self.defects.contains(&kind)
    }

    /// Remove one defect of `kind` (a successful fix).
    pub fn fix(&mut self, kind: DefectKind) {
        if let Some(i) = self.defects.iter().position(|&d| d == kind) {
            self.defects.remove(i);
        }
    }
}

/// Behavioural parameters of the simulated LLM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LlmModel {
    /// Base probability of a type error per component.
    pub p_type_error: f64,
    /// Base probability of a simple logic bug.
    pub p_simple: f64,
    /// Base probability of a complex logic bug.
    pub p_complex: f64,
    /// Interop-mismatch probability per shared type, text prompts.
    pub p_interop_text: f64,
    /// Interop-mismatch probability per shared type once data types are
    /// stabilised by pseudocode-first prompting.
    pub p_interop_stable: f64,
    /// Multiplier applied to all defect rates under monolithic prompts.
    pub monolithic_penalty: f64,
    /// P(fix) when the participant pastes the error message.
    pub fix_error_message: f64,
    /// P(fix a simple bug) when sending the failing test case.
    pub fix_test_case: f64,
    /// P(fix a complex bug) under step-by-step re-specification.
    pub fix_step_by_step: f64,
    /// Chance a regeneration introduces a fresh type error.
    pub churn: f64,
    /// Relative LoC noise (uniform ±).
    pub loc_noise: f64,
}

impl Default for LlmModel {
    fn default() -> Self {
        LlmModel {
            p_type_error: 0.55,
            p_simple: 0.45,
            p_complex: 0.35,
            p_interop_text: 0.28,
            p_interop_stable: 0.05,
            monolithic_penalty: 2.2,
            fix_error_message: 0.9,
            fix_test_case: 0.85,
            fix_step_by_step: 0.8,
            churn: 0.06,
            loc_noise: 0.15,
        }
    }
}

/// The simulated LLM: the model plus a seeded RNG and the session-level
/// "are data types stabilised?" state.
#[derive(Debug)]
pub struct SimulatedLlm {
    /// Behavioural parameters.
    pub model: LlmModel,
    rng: StdRng,
    /// Set once a pseudocode-based prompt has pinned the key data types.
    types_stable: bool,
}

impl SimulatedLlm {
    /// A simulated LLM with default parameters and the given seed.
    pub fn new(seed: u64) -> Self {
        Self::with_model(LlmModel::default(), seed)
    }

    /// A simulated LLM with explicit parameters.
    pub fn with_model(model: LlmModel, seed: u64) -> Self {
        SimulatedLlm { model, rng: StdRng::seed_from_u64(seed), types_stable: false }
    }

    /// Whether pseudocode-first prompting has stabilised the data types.
    pub fn types_stable(&self) -> bool {
        self.types_stable
    }

    /// The session RNG. The participant's own coin flips (which bugs
    /// their tests catch) draw from the same stream so one seed
    /// reproduces an entire session.
    pub fn session_rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn bernoulli(&mut self, p: f64) -> bool {
        self.rng.random::<f64>() < p.clamp(0.0, 1.0)
    }

    /// Respond to an implementation prompt for `spec` (component index
    /// `idx`) under `style`.
    pub fn implement(&mut self, spec: &ComponentSpec, idx: usize, style: PromptStyle) -> CodeArtifact {
        let penalty = match style {
            PromptStyle::Monolithic => self.model.monolithic_penalty,
            _ => 1.0,
        };
        if style == PromptStyle::ModularPseudocode && spec.has_pseudocode {
            // The pseudocode pins the component's data structures; later
            // components generated against them interoperate.
            self.types_stable = true;
        }
        let mut defects = Vec::new();
        if self.bernoulli(self.model.p_type_error * spec.difficulty * penalty) {
            defects.push(DefectKind::TypeError);
        }
        if self.bernoulli(self.model.p_simple * spec.difficulty * penalty) {
            defects.push(DefectKind::SimpleLogic);
        }
        if self.bernoulli(self.model.p_complex * spec.difficulty * penalty) {
            defects.push(DefectKind::ComplexLogic);
        }
        let p_interop = if self.types_stable && style != PromptStyle::Monolithic {
            self.model.p_interop_stable
        } else {
            self.model.p_interop_text
        };
        for _ in 0..spec.shared_types {
            if self.bernoulli(p_interop * penalty.min(2.0)) {
                defects.push(DefectKind::InteropMismatch);
                break; // one mismatch per component is enough to fail integration
            }
        }
        // ChatGPT "tends to generate shorter code" — LoC centres on the
        // estimate with mild noise.
        let noise = 1.0 + self.model.loc_noise * (self.rng.random::<f64>() * 2.0 - 1.0);
        let loc = ((spec.loc_estimate as f64) * noise).round().max(5.0) as u32;
        CodeArtifact { component: idx, loc, defects }
    }

    /// Respond to a debug prompt. Returns `true` if the targeted defect
    /// class got fixed (the artifact is updated in place either way; a
    /// regeneration may introduce churn).
    pub fn debug(&mut self, artifact: &mut CodeArtifact, target: DefectKind, guideline: Guideline) -> bool {
        let p = match (guideline, target) {
            (Guideline::ErrorMessage, DefectKind::TypeError) => self.model.fix_error_message,
            (Guideline::TestCase, DefectKind::SimpleLogic) => self.model.fix_test_case,
            (Guideline::StepByStep, DefectKind::ComplexLogic) => self.model.fix_step_by_step,
            (Guideline::StepByStep, _) => 0.7,
            (Guideline::TestCase, DefectKind::TypeError) => 0.6,
            (Guideline::TestCase, _) => 0.3,
            (Guideline::ErrorMessage, _) => 0.2,
        };
        let fixed = self.bernoulli(p);
        if fixed {
            artifact.fix(target);
        }
        if self.bernoulli(self.model.churn) && !artifact.has(DefectKind::TypeError) {
            artifact.defects.push(DefectKind::TypeError);
        }
        fixed
    }
}

/// Which of §3.3's three debugging guidelines a debug prompt follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guideline {
    /// Paste the compiler/runtime error message.
    ErrorMessage,
    /// Send the failing test case.
    TestCase,
    /// Re-specify the logic step by step.
    StepByStep,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{PaperSpec, TargetSystem};

    fn spec() -> ComponentSpec {
        PaperSpec::for_system(TargetSystem::NcFlow).components[3].clone()
    }

    #[test]
    fn deterministic_given_seed() {
        let s = spec();
        let a = SimulatedLlm::new(9).implement(&s, 3, PromptStyle::ModularText);
        let b = SimulatedLlm::new(9).implement(&s, 3, PromptStyle::ModularText);
        assert_eq!(a.loc, b.loc);
        assert_eq!(a.defects, b.defects);
    }

    #[test]
    fn monolithic_breeds_more_defects() {
        let s = spec();
        let count = |style| {
            let mut llm = SimulatedLlm::new(1);
            (0..300).map(|i| llm.implement(&s, i, style).defects.len()).sum::<usize>()
        };
        let mono = count(PromptStyle::Monolithic);
        let modular = count(PromptStyle::ModularText);
        assert!(
            mono > modular + modular / 4,
            "monolithic {mono} not clearly worse than modular {modular}"
        );
    }

    #[test]
    fn pseudocode_first_reduces_interop_mismatches() {
        let nc = PaperSpec::for_system(TargetSystem::NcFlow);
        let count_interop = |style: PromptStyle| {
            let mut total = 0;
            for seed in 0..60 {
                let mut llm = SimulatedLlm::new(seed);
                for (i, c) in nc.components.iter().enumerate() {
                    let a = llm.implement(c, i, style);
                    total += a.defects.iter().filter(|&&d| d == DefectKind::InteropMismatch).count();
                }
            }
            total
        };
        let text = count_interop(PromptStyle::ModularText);
        let pseudo = count_interop(PromptStyle::ModularPseudocode);
        assert!(
            pseudo * 2 < text,
            "pseudocode-first ({pseudo}) should at least halve interop bugs vs text ({text})"
        );
    }

    #[test]
    fn error_message_guideline_fixes_type_errors() {
        let mut fixed = 0;
        for seed in 0..200 {
            let mut llm = SimulatedLlm::new(seed);
            let mut a = CodeArtifact { component: 0, loc: 100, defects: vec![DefectKind::TypeError] };
            if llm.debug(&mut a, DefectKind::TypeError, Guideline::ErrorMessage) {
                fixed += 1;
            }
        }
        assert!((150..=200).contains(&fixed), "fix rate {fixed}/200 out of range");
    }

    #[test]
    fn mismatched_guideline_is_weak() {
        let mut fixed = 0;
        for seed in 0..200 {
            let mut llm = SimulatedLlm::new(seed);
            let mut a =
                CodeArtifact { component: 0, loc: 100, defects: vec![DefectKind::ComplexLogic] };
            if llm.debug(&mut a, DefectKind::ComplexLogic, Guideline::ErrorMessage) {
                fixed += 1;
            }
        }
        assert!(fixed < 90, "error-message prompts should rarely fix complex bugs: {fixed}");
    }

    #[test]
    fn fix_removes_exactly_one_defect() {
        let mut a = CodeArtifact {
            component: 0,
            loc: 10,
            defects: vec![DefectKind::SimpleLogic, DefectKind::SimpleLogic],
        };
        a.fix(DefectKind::SimpleLogic);
        assert_eq!(a.defects.len(), 1);
    }

    #[test]
    fn loc_tracks_estimate() {
        let s = spec();
        let mut llm = SimulatedLlm::new(4);
        for _ in 0..50 {
            let a = llm.implement(&s, 0, PromptStyle::ModularText);
            let lo = (s.loc_estimate as f64 * 0.8) as u32;
            let hi = (s.loc_estimate as f64 * 1.2) as u32;
            assert!((lo..=hi).contains(&a.loc), "loc {} vs estimate {}", a.loc, s.loc_estimate);
        }
    }
}
