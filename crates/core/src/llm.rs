//! The simulated LLM.
//!
//! A seeded stochastic model of a ChatGPT-class code generator, with
//! exactly the behavioural regularities the paper's §3.3 lessons report:
//!
//! * **Monolithic prompts fail**: defect rates blow up when one prompt
//!   asks for a whole multi-component system.
//! * **Pseudocode stabilises data types**: once the key data types are
//!   pinned by pseudocode-based prompts, later components interoperate;
//!   text-only prompting yields interop mismatches discovered at
//!   integration time.
//! * **Three debugging guidelines**: pasting a compiler/runtime error
//!   fixes type errors; sending a failing test case fixes simple logic
//!   bugs; step-by-step re-specification fixes complex logic bugs.

use crate::paper::ComponentSpec;
use crate::prompt::PromptStyle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The defect taxonomy of §3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DefectKind {
    /// Wrong/mismatched data types — surfaces as a compile/runtime error.
    TypeError,
    /// Component disagrees with its peers on shared data structures —
    /// surfaces at integration.
    InteropMismatch,
    /// A simple logic bug — surfaces on a small test case.
    SimpleLogic,
    /// A complex logic bug — needs step-by-step re-specification.
    ComplexLogic,
}

/// A generated implementation of one component.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CodeArtifact {
    /// Which component (index into the paper spec).
    pub component: usize,
    /// Generated lines of code.
    pub loc: u32,
    /// Latent defects (not all are visible immediately).
    pub defects: Vec<DefectKind>,
    /// The statically inspectable shape of the generated code.
    pub surface: CodeSurface,
}

impl CodeArtifact {
    /// Build an artifact whose surface manifests exactly `defects`.
    /// `shared_types` sizes the interop surface (exports), as in
    /// [`crate::paper::ComponentSpec::shared_types`].
    pub fn with_defects(
        component: usize,
        loc: u32,
        shared_types: u32,
        defects: Vec<DefectKind>,
    ) -> Self {
        let surface = CodeSurface::synthesize(component, loc, shared_types, &defects);
        CodeArtifact { component, loc, defects, surface }
    }

    /// Whether a defect of `kind` is present.
    pub fn has(&self, kind: DefectKind) -> bool {
        self.defects.contains(&kind)
    }

    /// Remove one defect of `kind` (a successful fix). The fix also
    /// repairs the defect's structural manifestation on the surface.
    pub fn fix(&mut self, kind: DefectKind) {
        if let Some(i) = self.defects.iter().position(|&d| d == kind) {
            self.defects.remove(i);
        }
        if !self.has(kind) {
            self.surface.repair(self.component, self.loc, kind);
        }
    }

    /// Implant a defect of `kind` together with its structural
    /// manifestation (used by regeneration churn and fault injection).
    pub fn inject(&mut self, kind: DefectKind) {
        self.defects.push(kind);
        self.surface.corrupt(self.component, kind);
    }

    /// A truncated response: half the code arrived. The surface is
    /// resynthesized at the new size (keeping the current defect set's
    /// manifestations) and a type error is implanted if none is present
    /// — truncated code does not compile.
    pub fn truncate(&mut self) {
        self.loc = (self.loc / 2).max(5);
        let shared_types = self.surface.exports.len() as u32;
        self.surface =
            CodeSurface::synthesize(self.component, self.loc, shared_types, &self.defects);
        if !self.has(DefectKind::TypeError) {
            self.inject(DefectKind::TypeError);
        }
    }
}

/// A function signature on the surface: parameter type ids only (the
/// level at which the compiler, and our static auditor, check calls).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    /// Function id within the component.
    pub fn_id: u32,
    /// Parameter type ids.
    pub params: Vec<u16>,
}

/// A call site: which function calls which, with which argument types.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallSite {
    /// Calling function id.
    pub caller: u32,
    /// Called function id (index into the component's signatures).
    pub callee: u32,
    /// Argument type ids as written at the call site.
    pub args: Vec<u16>,
}

/// A shared data type this component exports to its peers, identified
/// by a structural fingerprint (field layout hash). Peers that pinned
/// the type from the spec export [`canonical_fingerprint`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypeExport {
    /// Shared type id (from the spec's interop surface).
    pub type_id: u32,
    /// Structural fingerprint of this component's definition.
    pub fingerprint: u64,
}

/// A bounded loop on the surface: the bound the surrounding code
/// declares (array length, iteration count) versus the bound the loop
/// body actually exercises. Off-by-one disagreement is the §3.3
/// "simplified logic" archetype.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopShape {
    /// The bound the surrounding code declares.
    pub declared_bound: u32,
    /// The bound the loop body exercises.
    pub exercised_bound: u32,
}

/// The statically inspectable shape of a generated artifact: enough
/// structure for a pre-execution auditor to find each [`DefectKind`]
/// without running anything, and without reading the latent defect
/// list. Synthesis is a pure function of (component, loc, interop
/// surface, defects) — it draws nothing from the session RNG, so adding
/// it changed no seeded behaviour.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CodeSurface {
    /// Function signatures in the component.
    pub signatures: Vec<Signature>,
    /// Intra-component call sites.
    pub calls: Vec<CallSite>,
    /// Shared-type exports (the interop surface).
    pub exports: Vec<TypeExport>,
    /// Bounded loops.
    pub loops: Vec<LoopShape>,
    /// Conditional-branch count (control-flow density).
    pub branches: u32,
}

/// splitmix64 finalizer — the deterministic hash behind fingerprints
/// and surface shaping. Not a session RNG: same inputs, same surface.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The fingerprint of shared type `type_id` as pinned by the paper
/// spec (the interface registry). Components that implement the spec's
/// data structures faithfully export exactly this value; an interop
/// mismatch is a deviation from it.
pub fn canonical_fingerprint(type_id: u32) -> u64 {
    mix(0xC0DE_0000u64 + type_id as u64)
}

/// Expected conditional-branch count for a component of `loc` lines —
/// the LoC-profile model shared by the generator and the static
/// auditor. Clean code lands within ±8% of this; "complex logic
/// simplified away" (§3.3) shows up as a collapse far below it.
pub fn expected_branches(loc: u32) -> f64 {
    2.0 + loc as f64 / 12.0
}

impl CodeSurface {
    /// Synthesize the surface for a component of `loc` lines with
    /// `shared_types` interop exports, then manifest each defect.
    pub fn synthesize(
        component: usize,
        loc: u32,
        shared_types: u32,
        defects: &[DefectKind],
    ) -> CodeSurface {
        let mut s = CodeSurface::clean(component, loc, shared_types);
        for &d in defects {
            s.corrupt(component, d);
        }
        s
    }

    /// A defect-free surface.
    fn clean(component: usize, loc: u32, shared_types: u32) -> CodeSurface {
        let n_sigs = 2 + (loc / 120) as usize;
        let signatures: Vec<Signature> = (0..n_sigs)
            .map(|i| Signature {
                fn_id: i as u32,
                params: (0..1 + (i + loc as usize) % 3)
                    .map(|p| (mix(((component as u64) << 32) ^ (i * 8 + p) as u64) % 7) as u16)
                    .collect(),
            })
            .collect();
        let calls: Vec<CallSite> = (1..n_sigs)
            .map(|i| CallSite {
                caller: i as u32,
                callee: 0,
                args: signatures[0].params.clone(),
            })
            .collect();
        let exports = (0..shared_types)
            .map(|t| TypeExport { type_id: t, fingerprint: canonical_fingerprint(t) })
            .collect();
        let loops = (0..1 + (loc / 100) as usize)
            .map(|i| {
                let b = 4 + (mix(loc as u64 ^ ((i as u64) << 16)) % 28) as u32;
                LoopShape { declared_bound: b, exercised_bound: b }
            })
            .collect();
        CodeSurface {
            signatures,
            calls,
            exports,
            loops,
            branches: Self::plausible_branches(component, loc),
        }
    }

    /// Clean branch count: the expected density with a deterministic
    /// ±8% per-component jitter (real code is not exactly on-model).
    fn plausible_branches(component: usize, loc: u32) -> u32 {
        let j = 0.92
            + 0.16 * (mix(((component as u64) << 20) ^ loc as u64) % 1000) as f64 / 1000.0;
        (expected_branches(loc) * j).round() as u32
    }

    /// Manifest `kind` structurally.
    pub fn corrupt(&mut self, component: usize, kind: DefectKind) {
        match kind {
            DefectKind::TypeError => {
                // A call site whose argument types disagree with the
                // callee's signature (type id shifted out of range).
                if let Some(c) = self.calls.last_mut() {
                    if let Some(a) = c.args.first_mut() {
                        *a += 7;
                    }
                }
            }
            DefectKind::InteropMismatch => {
                // This component's definition of a shared type drifts
                // from the spec-pinned layout its peers use.
                if let Some(e) = self.exports.first_mut() {
                    e.fingerprint ^= mix(0x5A17 ^ ((component as u64) << 8)) | 1;
                }
            }
            DefectKind::SimpleLogic => {
                // The off-by-one: the loop body runs one step past the
                // declared bound.
                if let Some(l) = self.loops.first_mut() {
                    l.exercised_bound = l.declared_bound + 1;
                }
            }
            DefectKind::ComplexLogic => {
                // The hard part of the algorithm is "simplified" away:
                // control flow collapses far below the LoC profile.
                self.branches = ((self.branches as f64) * 0.4).round().max(1.0) as u32;
            }
        }
    }

    /// Undo the structural manifestation of `kind`.
    pub fn repair(&mut self, component: usize, loc: u32, kind: DefectKind) {
        match kind {
            DefectKind::TypeError => {
                for c in &mut self.calls {
                    if let Some(sig) = self.signatures.iter().find(|s| s.fn_id == c.callee) {
                        c.args = sig.params.clone();
                    }
                }
            }
            DefectKind::InteropMismatch => {
                for e in &mut self.exports {
                    e.fingerprint = canonical_fingerprint(e.type_id);
                }
            }
            DefectKind::SimpleLogic => {
                for l in &mut self.loops {
                    l.exercised_bound = l.declared_bound;
                }
            }
            DefectKind::ComplexLogic => {
                self.branches = Self::plausible_branches(component, loc);
            }
        }
    }
}

/// Behavioural parameters of the simulated LLM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LlmModel {
    /// Base probability of a type error per component.
    pub p_type_error: f64,
    /// Base probability of a simple logic bug.
    pub p_simple: f64,
    /// Base probability of a complex logic bug.
    pub p_complex: f64,
    /// Interop-mismatch probability per shared type, text prompts.
    pub p_interop_text: f64,
    /// Interop-mismatch probability per shared type once data types are
    /// stabilised by pseudocode-first prompting.
    pub p_interop_stable: f64,
    /// Multiplier applied to all defect rates under monolithic prompts.
    pub monolithic_penalty: f64,
    /// P(fix) when the participant pastes the error message.
    pub fix_error_message: f64,
    /// P(fix a simple bug) when sending the failing test case.
    pub fix_test_case: f64,
    /// P(fix a complex bug) under step-by-step re-specification.
    pub fix_step_by_step: f64,
    /// Chance a regeneration introduces a fresh type error.
    pub churn: f64,
    /// Relative LoC noise (uniform ±).
    pub loc_noise: f64,
}

impl Default for LlmModel {
    fn default() -> Self {
        LlmModel {
            p_type_error: 0.55,
            p_simple: 0.45,
            p_complex: 0.35,
            p_interop_text: 0.28,
            p_interop_stable: 0.05,
            monolithic_penalty: 2.2,
            fix_error_message: 0.9,
            fix_test_case: 0.85,
            fix_step_by_step: 0.8,
            churn: 0.06,
            loc_noise: 0.15,
        }
    }
}

/// The simulated LLM: the model plus a seeded RNG and the session-level
/// "are data types stabilised?" state.
#[derive(Debug)]
pub struct SimulatedLlm {
    /// Behavioural parameters.
    pub model: LlmModel,
    rng: StdRng,
    /// Set once a pseudocode-based prompt has pinned the key data types.
    types_stable: bool,
}

impl SimulatedLlm {
    /// A simulated LLM with default parameters and the given seed.
    pub fn new(seed: u64) -> Self {
        Self::with_model(LlmModel::default(), seed)
    }

    /// A simulated LLM with explicit parameters.
    pub fn with_model(model: LlmModel, seed: u64) -> Self {
        SimulatedLlm { model, rng: StdRng::seed_from_u64(seed), types_stable: false }
    }

    /// Whether pseudocode-first prompting has stabilised the data types.
    pub fn types_stable(&self) -> bool {
        self.types_stable
    }

    /// The session RNG. The participant's own coin flips (which bugs
    /// their tests catch) draw from the same stream so one seed
    /// reproduces an entire session.
    pub fn session_rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn bernoulli(&mut self, p: f64) -> bool {
        self.rng.random::<f64>() < p.clamp(0.0, 1.0)
    }

    /// Respond to an implementation prompt for `spec` (component index
    /// `idx`) under `style`.
    pub fn implement(&mut self, spec: &ComponentSpec, idx: usize, style: PromptStyle) -> CodeArtifact {
        let penalty = match style {
            PromptStyle::Monolithic => self.model.monolithic_penalty,
            _ => 1.0,
        };
        if style == PromptStyle::ModularPseudocode && spec.has_pseudocode {
            // The pseudocode pins the component's data structures; later
            // components generated against them interoperate.
            self.types_stable = true;
        }
        let mut defects = Vec::new();
        if self.bernoulli(self.model.p_type_error * spec.difficulty * penalty) {
            defects.push(DefectKind::TypeError);
        }
        if self.bernoulli(self.model.p_simple * spec.difficulty * penalty) {
            defects.push(DefectKind::SimpleLogic);
        }
        if self.bernoulli(self.model.p_complex * spec.difficulty * penalty) {
            defects.push(DefectKind::ComplexLogic);
        }
        let p_interop = if self.types_stable && style != PromptStyle::Monolithic {
            self.model.p_interop_stable
        } else {
            self.model.p_interop_text
        };
        for _ in 0..spec.shared_types {
            if self.bernoulli(p_interop * penalty.min(2.0)) {
                defects.push(DefectKind::InteropMismatch);
                break; // one mismatch per component is enough to fail integration
            }
        }
        // ChatGPT "tends to generate shorter code" — LoC centres on the
        // estimate with mild noise.
        let noise = 1.0 + self.model.loc_noise * (self.rng.random::<f64>() * 2.0 - 1.0);
        let loc = ((spec.loc_estimate as f64) * noise).round().max(5.0) as u32;
        CodeArtifact::with_defects(idx, loc, spec.shared_types, defects)
    }

    /// Respond to a debug prompt. Returns `true` if the targeted defect
    /// class got fixed (the artifact is updated in place either way; a
    /// regeneration may introduce churn).
    pub fn debug(&mut self, artifact: &mut CodeArtifact, target: DefectKind, guideline: Guideline) -> bool {
        let p = match (guideline, target) {
            (Guideline::ErrorMessage, DefectKind::TypeError) => self.model.fix_error_message,
            (Guideline::TestCase, DefectKind::SimpleLogic) => self.model.fix_test_case,
            (Guideline::StepByStep, DefectKind::ComplexLogic) => self.model.fix_step_by_step,
            (Guideline::StepByStep, _) => 0.7,
            (Guideline::TestCase, DefectKind::TypeError) => 0.6,
            (Guideline::TestCase, _) => 0.3,
            (Guideline::ErrorMessage, _) => 0.2,
        };
        let fixed = self.bernoulli(p);
        if fixed {
            artifact.fix(target);
        }
        if self.bernoulli(self.model.churn) && !artifact.has(DefectKind::TypeError) {
            artifact.inject(DefectKind::TypeError);
        }
        fixed
    }
}

/// Which of §3.3's three debugging guidelines a debug prompt follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guideline {
    /// Paste the compiler/runtime error message.
    ErrorMessage,
    /// Send the failing test case.
    TestCase,
    /// Re-specify the logic step by step.
    StepByStep,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{PaperSpec, TargetSystem};

    fn spec() -> ComponentSpec {
        PaperSpec::for_system(TargetSystem::NcFlow).components[3].clone()
    }

    #[test]
    fn deterministic_given_seed() {
        let s = spec();
        let a = SimulatedLlm::new(9).implement(&s, 3, PromptStyle::ModularText);
        let b = SimulatedLlm::new(9).implement(&s, 3, PromptStyle::ModularText);
        assert_eq!(a.loc, b.loc);
        assert_eq!(a.defects, b.defects);
    }

    #[test]
    fn monolithic_breeds_more_defects() {
        let s = spec();
        let count = |style| {
            let mut llm = SimulatedLlm::new(1);
            (0..300).map(|i| llm.implement(&s, i, style).defects.len()).sum::<usize>()
        };
        let mono = count(PromptStyle::Monolithic);
        let modular = count(PromptStyle::ModularText);
        assert!(
            mono > modular + modular / 4,
            "monolithic {mono} not clearly worse than modular {modular}"
        );
    }

    #[test]
    fn pseudocode_first_reduces_interop_mismatches() {
        let nc = PaperSpec::for_system(TargetSystem::NcFlow);
        let count_interop = |style: PromptStyle| {
            let mut total = 0;
            for seed in 0..60 {
                let mut llm = SimulatedLlm::new(seed);
                for (i, c) in nc.components.iter().enumerate() {
                    let a = llm.implement(c, i, style);
                    total += a.defects.iter().filter(|&&d| d == DefectKind::InteropMismatch).count();
                }
            }
            total
        };
        let text = count_interop(PromptStyle::ModularText);
        let pseudo = count_interop(PromptStyle::ModularPseudocode);
        assert!(
            pseudo * 2 < text,
            "pseudocode-first ({pseudo}) should at least halve interop bugs vs text ({text})"
        );
    }

    #[test]
    fn error_message_guideline_fixes_type_errors() {
        let mut fixed = 0;
        for seed in 0..200 {
            let mut llm = SimulatedLlm::new(seed);
            let mut a = CodeArtifact::with_defects(0, 100, 2, vec![DefectKind::TypeError]);
            if llm.debug(&mut a, DefectKind::TypeError, Guideline::ErrorMessage) {
                fixed += 1;
            }
        }
        assert!((150..=200).contains(&fixed), "fix rate {fixed}/200 out of range");
    }

    #[test]
    fn mismatched_guideline_is_weak() {
        let mut fixed = 0;
        for seed in 0..200 {
            let mut llm = SimulatedLlm::new(seed);
            let mut a = CodeArtifact::with_defects(0, 100, 2, vec![DefectKind::ComplexLogic]);
            if llm.debug(&mut a, DefectKind::ComplexLogic, Guideline::ErrorMessage) {
                fixed += 1;
            }
        }
        assert!(fixed < 90, "error-message prompts should rarely fix complex bugs: {fixed}");
    }

    #[test]
    fn fix_removes_exactly_one_defect() {
        let mut a = CodeArtifact::with_defects(
            0,
            10,
            1,
            vec![DefectKind::SimpleLogic, DefectKind::SimpleLogic],
        );
        a.fix(DefectKind::SimpleLogic);
        assert_eq!(a.defects.len(), 1);
    }

    #[test]
    fn surface_synthesis_is_deterministic_and_draws_no_rng() {
        // Same seed, same artifact — including the surface — and the
        // RNG stream is untouched by surface synthesis (loc, the last
        // draw, matches between two LLMs that only differ in whether
        // the surface is inspected).
        let s = spec();
        let a = SimulatedLlm::new(9).implement(&s, 3, PromptStyle::ModularText);
        let b = SimulatedLlm::new(9).implement(&s, 3, PromptStyle::ModularText);
        assert_eq!(a.surface, b.surface);
        assert_eq!(a.surface.exports.len(), s.shared_types as usize);
        assert!(!a.surface.signatures.is_empty());
        assert!(!a.surface.calls.is_empty());
    }

    #[test]
    fn fix_and_inject_keep_surface_in_sync() {
        let mut a = CodeArtifact::with_defects(2, 200, 3, vec![DefectKind::TypeError]);
        let clean = CodeSurface::synthesize(2, 200, 3, &[]);
        assert_ne!(a.surface, clean, "defect must manifest structurally");
        a.fix(DefectKind::TypeError);
        assert_eq!(a.surface, clean, "fix must repair the manifestation");
        a.inject(DefectKind::InteropMismatch);
        assert_ne!(a.surface, clean);
        a.fix(DefectKind::InteropMismatch);
        assert_eq!(a.surface, clean);
    }

    #[test]
    fn truncate_halves_loc_and_implants_a_type_error() {
        let mut a = CodeArtifact::with_defects(0, 400, 2, vec![]);
        a.truncate();
        assert_eq!(a.loc, 200);
        assert!(a.has(DefectKind::TypeError));
        let resynth = CodeSurface::synthesize(0, 200, 2, &a.defects);
        assert_eq!(a.surface, resynth);
    }

    #[test]
    fn loc_tracks_estimate() {
        let s = spec();
        let mut llm = SimulatedLlm::new(4);
        for _ in 0..50 {
            let a = llm.implement(&s, 0, PromptStyle::ModularText);
            let lo = (s.loc_estimate as f64 * 0.8) as u32;
            let hi = (s.loc_estimate as f64 * 1.2) as u32;
            assert!((lo..=hi).contains(&a.loc), "loc {} vs estimate {}", a.loc, s.loc_estimate);
        }
    }
}
