//! Differential validation: run the *real* Rust implementations of the
//! four systems in their "open-source prototype" and "LLM-reproduced"
//! configurations and measure exactly what §3.2 reports.
//!
//! | Participant | open-source config | reproduced config | gap source |
//! |---|---|---|---|
//! | A (NCFlow) | revised simplex ("Gurobi") | dense tableau ("PuLP") | LP solver |
//! | B (ARROW)  | `OpenSource` formulation | `Faithful` formulation | paper-code inconsistency |
//! | C (APKeep) | cached BDD engine | cached BDD engine | none (they matched) |
//! | D (AP)     | cached engine + selective BFS | uncached engine + path enumeration | BDD library + missing algorithm detail |

use crate::fault::{FaultInjector, FaultKind, FaultSite};
use netrepro_bdd::EngineProfile;
use netrepro_dpv::ap::ApVerifier;
use netrepro_dpv::apkeep::ApKeep;
use netrepro_dpv::dataset::{generate, DatasetOpts, FibDataset};
use netrepro_dpv::header::HeaderLayout;
use netrepro_dpv::reach::{path_enumeration, selective_bfs};
use netrepro_graph::gen::{waxman, TopologySpec};
use netrepro_graph::{traffic, NodeId};
use netrepro_lp::dense::DenseSimplex;
use netrepro_lp::fallback::FallbackSolver;
use netrepro_lp::revised::RevisedSimplex;
use netrepro_te::arrow::{solve_arrow, ArrowInstance, ArrowVariant};
use netrepro_te::mcf::TeInstance;
use netrepro_te::ncflow::{solve_ncflow, NcFlowConfig};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Summary of a pre-execution static audit, fed in by the analysis
/// layer before any differential run. Execution-based validation of a
/// prototype that fails this gate is wasted work: the comparison is
/// unsound before it starts (`crates/analysis` produces the findings;
/// [`crate::diagnosis::diagnose_static`] turns the gate into a
/// [`crate::diagnosis::Diagnosis`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StaticGate {
    /// Error-severity findings (type errors, interop mismatches).
    pub errors: usize,
    /// Warning-severity findings (logic-simplification heuristics).
    pub warnings: usize,
    /// One-line description of the worst finding (empty when clean).
    pub worst: String,
}

impl StaticGate {
    /// A gate with no findings.
    pub fn clean() -> Self {
        StaticGate { errors: 0, warnings: 0, worst: String::new() }
    }

    /// Whether the audited prototype should not be executed at all.
    pub fn rejects(&self) -> bool {
        self.errors > 0
    }
}

/// A TE validation row (participants A and B).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TeValidation {
    /// Instance name.
    pub instance: String,
    /// Objective of the open-source configuration.
    pub obj_open: f64,
    /// Objective of the reproduced configuration.
    pub obj_repro: f64,
    /// Latency of the open-source configuration.
    pub latency_open: Duration,
    /// Latency of the reproduced configuration.
    pub latency_repro: Duration,
}

impl TeValidation {
    /// |Δobjective| as a percentage of the open-source objective.
    pub fn obj_diff_pct(&self) -> f64 {
        if self.obj_open == 0.0 {
            return 0.0;
        }
        100.0 * (self.obj_open - self.obj_repro).abs() / self.obj_open
    }

    /// Reproduced-to-open-source latency ratio.
    pub fn latency_ratio(&self) -> f64 {
        self.latency_repro.as_secs_f64() / self.latency_open.as_secs_f64().max(1e-9)
    }
}

/// Build the TE instance for one catalogue entry.
pub fn te_instance(spec: &TopologySpec, commodities: usize, paths: usize) -> TeInstance {
    let graph = waxman(spec);
    let total = graph.num_nodes() as f64 * 30.0;
    let tm = traffic::gravity(&graph, total, spec.seed.wrapping_mul(31).wrapping_add(7));
    TeInstance {
        name: spec.name.clone(),
        graph,
        tm,
        paths_per_commodity: paths,
        max_commodities: commodities,
    }
}

/// One rung of the `lp_scale` ladder: an NCFlow-style MCF instance at
/// a multiple of the Table-A baseline size. The dense tableau solver is
/// only run where its cubic cost stays tractable (`run_dense`); the
/// revised simplex must solve every rung.
#[derive(Debug, Clone, Copy)]
pub struct LpScaleSpec {
    /// Rung label (`"1x"`, `"10x"`, `"100x"`).
    pub label: &'static str,
    /// Waxman topology size.
    pub nodes: usize,
    /// Engineered commodities.
    pub commodities: usize,
    /// Tunnels per commodity.
    pub paths: usize,
    /// Whether the dense solver participates (objective cross-check and
    /// the revised-vs-dense speedup gate need both solvers).
    pub run_dense: bool,
}

/// The `lp_scale` ladder shared by `netrepro bench` and the Criterion
/// `lp_scale` group: 1×/10×/100× of a small NCFlow-style instance.
/// Sizes were probed so dense stays under a second at 10× (where the
/// ≥5× speedup floor is gated) and is skipped at 100×.
pub fn lp_scale_specs() -> Vec<LpScaleSpec> {
    vec![
        LpScaleSpec { label: "1x", nodes: 12, commodities: 16, paths: 4, run_dense: true },
        LpScaleSpec { label: "10x", nodes: 40, commodities: 160, paths: 4, run_dense: true },
        LpScaleSpec { label: "100x", nodes: 80, commodities: 1600, paths: 4, run_dense: false },
    ]
}

/// Materialise one ladder rung as a [`TeInstance`] (seeded, so every
/// consumer benches the identical model).
pub fn lp_scale_instance(spec: &LpScaleSpec) -> TeInstance {
    te_instance(
        &TopologySpec::new(&format!("lpscale-{}", spec.label), spec.nodes, 2023),
        spec.commodities,
        spec.paths,
    )
}

/// Participant A: NCFlow with the fast vs slow LP solver.
pub fn validate_ncflow(inst: &TeInstance) -> Result<TeValidation, netrepro_te::TeError> {
    let cfg = NcFlowConfig::for_instance(inst);
    let open = solve_ncflow(inst, &cfg, &RevisedSimplex::default())?;
    let repro = solve_ncflow(inst, &cfg, &DenseSimplex::default())?;
    Ok(TeValidation {
        instance: inst.name.clone(),
        obj_open: open.total_flow,
        obj_repro: repro.total_flow,
        latency_open: open.solve_time,
        latency_repro: repro.solve_time,
    })
}

/// Participant B: ARROW, open-source vs paper-faithful formulation
/// (both on the fast solver — B's gap is formulation, not solver).
pub fn validate_arrow(inst: &ArrowInstance) -> Result<TeValidation, netrepro_te::TeError> {
    let open = solve_arrow(inst, ArrowVariant::OpenSource, &RevisedSimplex::default())?;
    let repro = solve_arrow(inst, ArrowVariant::Faithful, &RevisedSimplex::default())?;
    Ok(TeValidation {
        instance: inst.te.name.clone(),
        obj_open: open.committed,
        obj_repro: repro.committed,
        latency_open: open.solve_time,
        latency_repro: repro.solve_time,
    })
}

/// A DPV validation row (participants C and D).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DpvValidation {
    /// Dataset name.
    pub dataset: String,
    /// Atomic-predicate count, open-source configuration.
    pub atoms_open: usize,
    /// Atomic-predicate count, reproduced configuration.
    pub atoms_repro: usize,
    /// Predicate-computation latency, open-source.
    pub pred_time_open: Duration,
    /// Predicate-computation latency, reproduced.
    pub pred_time_repro: Duration,
    /// Reachability-verification latency, open-source.
    pub verify_time_open: Duration,
    /// Reachability-verification latency, reproduced.
    pub verify_time_repro: Duration,
    /// Whether the two configurations returned identical verification
    /// results on the sampled queries.
    pub results_equal: bool,
}

impl DpvValidation {
    /// Predicate-computation latency ratio (Table D's "up to 20×").
    pub fn pred_ratio(&self) -> f64 {
        self.pred_time_repro.as_secs_f64() / self.pred_time_open.as_secs_f64().max(1e-9)
    }

    /// Verification latency ratio (Table D's "up to 10⁴×").
    pub fn verify_ratio(&self) -> f64 {
        self.verify_time_repro.as_secs_f64() / self.verify_time_open.as_secs_f64().max(1e-9)
    }
}

/// Build a FIB dataset over a synthetic WAN.
pub fn dpv_dataset(name: &str, nodes: usize, width: u32, seed: u64) -> FibDataset {
    let spec = TopologySpec::new(name, nodes, seed);
    let graph = waxman(&spec);
    generate(graph, HeaderLayout::new(width), &DatasetOpts { seed, ..Default::default() })
}

/// Participant D: the AP verifier. Open-source = cached engine +
/// selective BFS; reproduced = uncached engine + path enumeration
/// (capped at `max_paths` per query, as D's runs had to be).
pub fn validate_ap(
    ds: &FibDataset,
    name: &str,
    queries: &[(NodeId, NodeId)],
    max_paths: u64,
) -> DpvValidation {
    // Predicate computation (Table D's first latency column).
    let t0 = std::time::Instant::now();
    let mut open = ApVerifier::build(&ds.network, EngineProfile::Cached);
    let pred_time_open = t0.elapsed();
    let t0 = std::time::Instant::now();
    let mut repro = ApVerifier::build(&ds.network, EngineProfile::Uncached);
    let pred_time_repro = t0.elapsed();

    let atoms_open = open.num_atoms();
    let atoms_repro = repro.num_atoms();

    // Verification (second latency column), checking result equality.
    let mut results_equal = true;
    let t0 = std::time::Instant::now();
    let mut open_results = Vec::new();
    for &(s, d) in queries {
        open_results.push(selective_bfs(&open, s, d).delivered);
    }
    let verify_time_open = t0.elapsed();

    let t0 = std::time::Instant::now();
    for (&(s, d), open_set) in queries.iter().zip(&open_results) {
        let en = path_enumeration(&mut repro, s, d, max_paths);
        // Atom universes are manager-specific, so compare the two
        // results by their satisfied fraction of header space, which is
        // engine-independent and exact for these widths.
        let open_bdd = open.atoms.to_bdd(&mut open.manager, open_set);
        let open_frac = open.manager.sat_fraction(open_bdd);
        let repro_frac = repro.manager.sat_fraction(en.delivered);
        if !en.truncated && (open_frac - repro_frac).abs() > 1e-12 {
            results_equal = false;
        }
    }
    let verify_time_repro = t0.elapsed();

    DpvValidation {
        dataset: name.to_string(),
        atoms_open,
        atoms_repro,
        pred_time_open,
        pred_time_repro,
        verify_time_open,
        verify_time_repro,
        results_equal,
    }
}

/// Participant C: APKeep. Both sides use the cached engine (the paper:
/// both prototypes use JDD and match); the reproduced run replays the
/// same update stream, so the row demonstrates equality.
pub fn validate_apkeep(ds: &FibDataset, name: &str) -> DpvValidation {
    let run = || {
        let t0 = std::time::Instant::now();
        let mut k = ApKeep::new(&ds.network, EngineProfile::Cached);
        for v in ds.network.graph.nodes() {
            for r in &ds.network.device(v).rules {
                k.insert(v, *r);
            }
        }
        let atoms = k.num_atomic_predicates();
        (atoms, t0.elapsed())
    };
    let (atoms_open, t_open) = run();
    let (atoms_repro, t_repro) = run();
    DpvValidation {
        dataset: name.to_string(),
        atoms_open,
        atoms_repro,
        pred_time_open: t_open,
        pred_time_repro: t_repro,
        verify_time_open: t_open,
        verify_time_repro: t_repro,
        results_equal: atoms_open == atoms_repro,
    }
}

/// When a solver fault fires, the validation runs through a
/// [`FallbackSolver`] whose primary has this crippled iteration budget
/// — a stall fails immediately, an "explosion" blows a small budget.
fn crippled_budget(stall: bool) -> Option<u64> {
    if stall {
        Some(1)
    } else {
        Some(8)
    }
}

/// Participant A under injected solver faults. A `SolverStall` or
/// `IterationExplosion` rolled at the LP boundary cripples the primary
/// solver's iteration budget; the [`FallbackSolver`] recovers on the
/// dense tableau and the fault is absorbed once the validation row is
/// produced. An error escaping this function leaves the fault marked
/// escaped in the ledger.
pub fn validate_ncflow_with_faults(
    inst: &TeInstance,
    faults: &mut FaultInjector,
) -> Result<TeValidation, netrepro_te::TeError> {
    let stall = faults.roll(FaultSite::LpSolver, FaultKind::SolverStall);
    let explode = faults.roll(FaultSite::LpSolver, FaultKind::IterationExplosion);
    if stall.is_none() && explode.is_none() {
        return validate_ncflow(inst);
    }
    let cfg = NcFlowConfig::for_instance(inst);
    let solver = FallbackSolver::new(
        RevisedSimplex { max_iterations: crippled_budget(stall.is_some()), ..Default::default() },
        DenseSimplex::default(),
    );
    let open = solve_ncflow(inst, &cfg, &solver)?;
    let repro = solve_ncflow(inst, &cfg, &DenseSimplex::default())?;
    for f in [stall, explode].into_iter().flatten() {
        faults.absorb(f);
    }
    Ok(TeValidation {
        instance: inst.name.clone(),
        obj_open: open.total_flow,
        obj_repro: repro.total_flow,
        latency_open: open.solve_time,
        latency_repro: repro.solve_time,
    })
}

/// Participant B under injected solver faults (same policy as
/// [`validate_ncflow_with_faults`]).
pub fn validate_arrow_with_faults(
    inst: &ArrowInstance,
    faults: &mut FaultInjector,
) -> Result<TeValidation, netrepro_te::TeError> {
    let stall = faults.roll(FaultSite::LpSolver, FaultKind::SolverStall);
    let explode = faults.roll(FaultSite::LpSolver, FaultKind::IterationExplosion);
    if stall.is_none() && explode.is_none() {
        return validate_arrow(inst);
    }
    let solver = FallbackSolver::new(
        RevisedSimplex { max_iterations: crippled_budget(stall.is_some()), ..Default::default() },
        DenseSimplex::default(),
    );
    let open = solve_arrow(inst, ArrowVariant::OpenSource, &solver)?;
    let repro = solve_arrow(inst, ArrowVariant::Faithful, &solver)?;
    for f in [stall, explode].into_iter().flatten() {
        faults.absorb(f);
    }
    Ok(TeValidation {
        instance: inst.te.name.clone(),
        obj_open: open.committed,
        obj_repro: repro.committed,
        latency_open: open.solve_time,
        latency_repro: repro.solve_time,
    })
}

/// Damage a dataset copy per the rolled corruption faults. Returns the
/// (possibly corrupted) dataset and the fault ids to absorb once
/// verification completes on it: the resilience claim for dataset
/// corruption is that the pipeline *finishes and reports* on damaged
/// input (divergent results are the signal), rather than crashing.
fn corrupted_copy(
    ds: &FibDataset,
    faults: &mut FaultInjector,
) -> (FibDataset, Vec<crate::fault::FaultId>) {
    let seed = faults.plan().seed;
    let mut local = ds.clone();
    let mut pending = Vec::new();
    if let Some(f) = faults.roll(FaultSite::DpvDataset, FaultKind::LinkCorruption) {
        local.corrupt_links(2, seed.wrapping_add(0xC0));
        pending.push(f);
    }
    if let Some(f) = faults.roll(FaultSite::DpvDataset, FaultKind::FibCorruption) {
        local.corrupt_fib(4, seed.wrapping_add(0xF1));
        pending.push(f);
    }
    (local, pending)
}

/// Participant D under injected dataset/BDD faults: link and FIB
/// corruption are applied to a copy of the dataset, and a rolled
/// `TableExhaustion` is absorbed by exercising the growth-retry build
/// (tiny node cap, doubled until the network compiles).
pub fn validate_ap_with_faults(
    ds: &FibDataset,
    name: &str,
    queries: &[(NodeId, NodeId)],
    max_paths: u64,
    faults: &mut FaultInjector,
) -> DpvValidation {
    let (local, pending) = corrupted_copy(ds, faults);
    if let Some(f) = faults.roll(FaultSite::BddTable, FaultKind::TableExhaustion) {
        // Force the exhaustion for real: start from a 4-node cap and let
        // the growth-retry loop double it until the compile goes through.
        if let Ok((_, doublings)) =
            ApVerifier::build_with_growth(&local.network, EngineProfile::Cached, 4, 24)
        {
            if doublings > 0 {
                faults.absorb(f);
            }
        }
    }
    let v = validate_ap(&local, name, queries, max_paths);
    for f in pending {
        faults.absorb(f);
    }
    v
}

/// Participant C under injected dataset faults (corruption only —
/// APKeep replays the same update stream on both sides, so the row
/// demonstrates that equality survives a damaged FIB).
pub fn validate_apkeep_with_faults(
    ds: &FibDataset,
    name: &str,
    faults: &mut FaultInjector,
) -> DpvValidation {
    let (local, pending) = corrupted_copy(ds, faults);
    let v = validate_apkeep(&local, name);
    for f in pending {
        faults.absorb(f);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrepro_te::arrow::single_fiber_scenarios;

    #[test]
    fn ncflow_solvers_agree_on_objective() {
        let inst = te_instance(&TopologySpec::new("TestWan", 16, 11), 10, 3);
        let v = validate_ncflow(&inst).unwrap();
        assert!(v.obj_diff_pct() < 3.51, "objective diff {}%", v.obj_diff_pct());
        assert!(v.obj_open > 0.0);
    }

    #[test]
    fn arrow_faithful_loses_to_open_source() {
        let te = te_instance(&TopologySpec::new("TestOptical", 12, 13), 8, 3);
        let scenarios = single_fiber_scenarios(&te, 3);
        let inst = ArrowInstance { te, scenarios, restoration_fraction: 0.4 };
        let v = validate_arrow(&inst).unwrap();
        assert!(
            v.obj_repro <= v.obj_open + 1e-6,
            "faithful {} must not beat open-source {}",
            v.obj_repro,
            v.obj_open
        );
    }

    #[test]
    fn ap_configs_compute_same_atoms() {
        let ds = dpv_dataset("TestNet", 8, 12, 3);
        let queries = vec![(NodeId(0), NodeId(4)), (NodeId(2), NodeId(7))];
        let v = validate_ap(&ds, "TestNet", &queries, 100_000);
        assert_eq!(v.atoms_open, v.atoms_repro);
        assert!(v.results_equal, "verification results diverged");
    }

    #[test]
    fn apkeep_runs_match_exactly() {
        let ds = dpv_dataset("TestNet", 8, 12, 5);
        let v = validate_apkeep(&ds, "TestNet");
        assert_eq!(v.atoms_open, v.atoms_repro);
        assert!(v.results_equal);
    }

    #[test]
    fn disabled_injector_leaves_validation_untouched() {
        let inst = te_instance(&TopologySpec::new("TestWan", 16, 11), 10, 3);
        let plain = validate_ncflow(&inst).unwrap();
        let mut inj = FaultInjector::disabled();
        let faulted = validate_ncflow_with_faults(&inst, &mut inj).unwrap();
        // Parallel R2 makes the summation order (and so the last ULP)
        // run-dependent; the disabled injector must not add more than
        // that.
        assert!((plain.obj_open - faulted.obj_open).abs() < 1e-9 * plain.obj_open);
        assert!((plain.obj_repro - faulted.obj_repro).abs() < 1e-9 * plain.obj_repro);
        assert_eq!(inj.report().injected, 0);

        let ds = dpv_dataset("TestNet", 8, 12, 3);
        let queries = vec![(NodeId(0), NodeId(4))];
        let plain = validate_ap(&ds, "TestNet", &queries, 100_000);
        let faulted = validate_ap_with_faults(&ds, "TestNet", &queries, 100_000, &mut inj);
        assert_eq!(plain.atoms_open, faulted.atoms_open);
        assert_eq!(inj.report().injected, 0);
    }

    #[test]
    fn chaos_validation_completes_and_absorbs() {
        use crate::fault::{FaultPlan, FaultProfile};
        let mut inj = FaultPlan::new(FaultProfile::Chaos, 7).injector();
        let inst = te_instance(&TopologySpec::new("TestWan", 14, 21), 8, 3);
        let v = validate_ncflow_with_faults(&inst, &mut inj).unwrap();
        assert!(v.obj_open > 0.0, "degraded run must still produce flow");

        let ds = dpv_dataset("TestNet", 8, 12, 3);
        let queries = vec![(NodeId(0), NodeId(4)), (NodeId(2), NodeId(7))];
        let _ = validate_ap_with_faults(&ds, "TestNet", &queries, 100_000, &mut inj);
        let _ = validate_apkeep_with_faults(&ds, "TestNet", &mut inj);

        let r = inj.report();
        assert!(r.injected > 0, "chaos must fire at these boundaries");
        assert_eq!(
            r.escaped, 0,
            "every validation-layer fault has a paired mechanism: {r:?}"
        );
    }

    #[test]
    fn solver_faults_keep_objective_close() {
        // The fallback tableau solves the same LP, so even a stalled
        // primary must land within the paper's agreement threshold.
        use crate::fault::{FaultPlan, FaultProfile};
        let inst = te_instance(&TopologySpec::new("TestWan", 16, 11), 10, 3);
        let plain = validate_ncflow(&inst).unwrap();
        for seed in 0..6u64 {
            let mut inj = FaultPlan::new(FaultProfile::Chaos, seed).injector();
            let v = validate_ncflow_with_faults(&inst, &mut inj).unwrap();
            assert!(
                (v.obj_open - plain.obj_open).abs() / plain.obj_open < 0.0351,
                "seed {seed}: degraded open objective drifted: {} vs {}",
                v.obj_open,
                plain.obj_open
            );
        }
    }
}
