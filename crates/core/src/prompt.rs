//! Prompt styles, kinds and word accounting.
//!
//! Word counts follow a simple additive model over the component's
//! description size, so that a session's total word count (Figure 4's
//! second axis) is a deterministic function of the interaction history.

use serde::{Deserialize, Serialize};

/// How the participant phrases implementation prompts (§3.3 lesson 1–2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PromptStyle {
    /// One prompt for the whole system ("implement XX that works in the
    /// following steps …"). ChatGPT "does not respond well" to these.
    Monolithic,
    /// One textual prompt per component.
    ModularText,
    /// One prompt per component, pasting the paper's pseudocode where
    /// available (stabilises data types across components).
    ModularPseudocode,
}

impl PromptStyle {
    /// Stable CLI name (`mono`/`text`/`pseudo`).
    pub fn name(self) -> &'static str {
        match self {
            PromptStyle::Monolithic => "mono",
            PromptStyle::ModularText => "text",
            PromptStyle::ModularPseudocode => "pseudo",
        }
    }

    /// Parse a CLI style name.
    pub fn parse(s: &str) -> Option<PromptStyle> {
        match s.to_ascii_lowercase().as_str() {
            "mono" | "monolithic" => Some(PromptStyle::Monolithic),
            "text" | "modular" => Some(PromptStyle::ModularText),
            "pseudo" | "pseudocode" => Some(PromptStyle::ModularPseudocode),
            _ => None,
        }
    }
}

/// What a single prompt asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PromptKind {
    /// Implement a component (by index into the paper spec).
    Implement {
        /// Component index.
        component: usize,
    },
    /// Report a compiler/runtime error message back to the LLM.
    DebugErrorMessage {
        /// Component index.
        component: usize,
    },
    /// Send a failing test case.
    DebugTestCase {
        /// Component index.
        component: usize,
    },
    /// Re-specify the logic step by step.
    DebugStepByStep {
        /// Component index.
        component: usize,
    },
    /// Ask the LLM to wire components together.
    Integrate,
}

/// A prompt sent during a session.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Prompt {
    /// Style under which it was phrased.
    pub style: PromptStyle,
    /// What it asks.
    pub kind: PromptKind,
    /// Word count.
    pub words: u32,
}

impl Prompt {
    /// Word count of an implementation prompt for a component with the
    /// given description size.
    pub fn implement_words(style: PromptStyle, description_words: u32, has_pseudocode: bool) -> u32 {
        match style {
            // One huge prompt: all descriptions at once (computed by the
            // session as a sum; per component we charge the description).
            PromptStyle::Monolithic => description_words,
            PromptStyle::ModularText => 25 + description_words,
            PromptStyle::ModularPseudocode => {
                // Pseudocode is pasted verbatim: longer prompt, but only
                // where the paper has pseudocode.
                25 + description_words + if has_pseudocode { 80 } else { 0 }
            }
        }
    }

    /// Word count of a debug prompt.
    pub fn debug_words(kind: &PromptKind) -> u32 {
        match kind {
            PromptKind::DebugErrorMessage { .. } => 45, // paste + one line
            PromptKind::DebugTestCase { .. } => 60,
            PromptKind::DebugStepByStep { .. } => 140,
            PromptKind::Implement { .. } | PromptKind::Integrate => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modular_overhead_beats_monolithic_per_component() {
        // A modular prompt spends a fixed overhead per component.
        let m = Prompt::implement_words(PromptStyle::Monolithic, 100, false);
        let t = Prompt::implement_words(PromptStyle::ModularText, 100, false);
        assert!(t > m);
    }

    #[test]
    fn pseudocode_costs_words_only_when_available() {
        let with = Prompt::implement_words(PromptStyle::ModularPseudocode, 100, true);
        let without = Prompt::implement_words(PromptStyle::ModularPseudocode, 100, false);
        assert_eq!(with - without, 80);
    }

    #[test]
    fn step_by_step_is_the_most_expensive_debug() {
        let e = Prompt::debug_words(&PromptKind::DebugErrorMessage { component: 0 });
        let t = Prompt::debug_words(&PromptKind::DebugTestCase { component: 0 });
        let s = Prompt::debug_words(&PromptKind::DebugStepByStep { component: 0 });
        assert!(e < t && t < s);
    }
}
