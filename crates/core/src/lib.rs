//! `netrepro-core` — the HotNets'23 paper's contribution: a framework
//! for reproducing network research results by prompt-engineering an
//! LLM, together with the survey pipeline behind its motivation figures.
//!
//! # What is real and what is simulated
//!
//! The paper's experiment put four students in front of ChatGPT for 25
//! days. Its measurable outputs are *process* artifacts — prompt and
//! word counts (Figure 4), lines of code (Figure 5), residual-defect
//! stories (§3.2) and the prompting/debugging lessons (§3.3) — plus
//! *outcome* artifacts: each reproduced prototype validated against the
//! open-source one.
//!
//! Per the substitution rule in `DESIGN.md`, the LLM is replaced by
//! [`llm::SimulatedLlm`]: a seeded stochastic code-generation process
//! over each target system's component graph, with a defect taxonomy
//! (type errors, interop mismatches, simple and complex logic bugs)
//! whose rates depend on the prompting style exactly as §3.3 reports
//! (modular beats monolithic; pseudocode-first stabilises data types;
//! error-message/test-case/step-by-step prompts fix the three bug
//! classes). The *outcome* side is not simulated at all: the validation
//! layer ([`validate`]) runs the real Rust implementations of NCFlow,
//! ARROW, AP and APKeep from the sibling crates, pairing each "open
//! source prototype" configuration against the "LLM-reproduced"
//! configuration that the paper describes (LP-solver choice, ARROW
//! formulation variant, BDD engine and traversal strategy).
//!
//! Modules:
//! * [`paper`] — component-level specs of the four target systems;
//! * [`prompt`] — prompt styles, kinds and word accounting;
//! * [`llm`] — the simulated LLM;
//! * [`student`] — participant strategies (who sends what when);
//! * [`session`] — the interaction loop producing Figure 4/5 metrics;
//! * [`artifact`] — generated-prototype assembly and LoC accounting;
//! * [`validate`] — differential validation on the real systems;
//! * [`survey`] — the SIGCOMM/NSDI corpus study (Figures 1 and 2);
//! * [`framework`] — §4's unified (semi-)automatic prompt-engineering
//!   framework;
//! * [`diagnosis`] — §4's missing-detail/vulnerability classifier over
//!   validation discrepancies;
//! * [`metrics`] — serialisable experiment records;
//! * [`harness`] — the crash-safe, journaled sweep runtime over the
//!   full experiment matrix;
//! * [`pool`] — the bounded worker pool + reorder buffer that lets the
//!   sweep execute cells out of order while committing them in
//!   canonical order;
//! * [`dpv_scale`] — partitioned parallel data-plane verification over
//!   seeded fat-tree fabrics: disjoint destination chunks, one BDD
//!   manager per pool worker, canonical-order merge byte-identical to
//!   the serial verifier;
//! * [`cache`] — the deterministic memoization layer ([`cache::CellMemo`])
//!   the sweep consults for oracle-side artifacts and warm cell replays;
//!   observationally invisible by construction;
//! * [`shard`] — the sharded sweep runtime: contiguous shard ranges,
//!   per-shard write-ahead journals, a coordinator lease ledger, and
//!   the deterministic merge that reconstructs the canonical journal
//!   byte-identical to a serial run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod cache;
pub mod diagnosis;
pub mod dpv_scale;
pub mod fault;
pub mod framework;
pub mod harness;
pub mod llm;
pub mod metrics;
pub mod paper;
pub mod pool;
pub mod prompt;
pub mod session;
pub mod shard;
pub mod student;
pub mod survey;
pub mod timeline;
pub mod transcript;
pub mod validate;

pub use fault::{FaultInjector, FaultPlan, FaultProfile, ResilienceReport};
pub use harness::{Sweep, SweepConfig, SweepReport};
pub use paper::TargetSystem;
pub use session::{ReproductionSession, SessionReport};
