//! The reproduction session: a participant prompt-engineering the
//! (simulated) LLM from first prompt to assembled prototype.
//!
//! The loop follows the paper's §3.1 procedure and §3.3 lessons:
//!
//! 1. an initial monolithic attempt that fails and is discarded;
//! 2. component-by-component implementation (pseudocode-backed
//!    components first, when the strategy says so);
//! 3. a compile/debug loop (error-message prompts kill type errors);
//! 4. a test/debug loop (test-case prompts kill simple bugs; complex
//!    bugs need step-by-step prompts — participants who never escalate
//!    keep residual complex bugs, like participant D);
//! 5. integration, where interop mismatches surface and are repaired.

use crate::artifact::PrototypeArtifact;
use crate::fault::{FaultInjector, FaultKind, FaultSite, RetryPolicy};
use crate::llm::{CodeArtifact, DefectKind, Guideline, SimulatedLlm};
use crate::paper::PaperSpec;
use crate::prompt::{Prompt, PromptKind, PromptStyle};
use crate::student::Participant;
use serde::{Deserialize, Serialize};

/// A full session transcript plus its outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionReport {
    /// Participant letter.
    pub participant: String,
    /// Every prompt sent, in order.
    pub prompts: Vec<Prompt>,
    /// The assembled prototype.
    pub artifact: PrototypeArtifact,
    /// Defects that were never repaired (shipped in the prototype).
    pub residual_defects: Vec<DefectKind>,
    /// The per-component artifacts as shipped (surface included), so a
    /// static auditor can gate the prototype without re-running the
    /// session.
    pub component_artifacts: Vec<CodeArtifact>,
}

impl SessionReport {
    /// Number of prompts (Figure 4, left axis).
    pub fn total_prompts(&self) -> usize {
        self.prompts.len()
    }

    /// Total words across prompts (Figure 4, right axis).
    pub fn total_words(&self) -> u64 {
        self.prompts.iter().map(|p| p.words as u64).sum()
    }
}

/// Drives one participant through one reproduction.
#[derive(Debug)]
pub struct ReproductionSession {
    participant: Participant,
    llm: SimulatedLlm,
}

impl ReproductionSession {
    /// A session for `participant` against a fresh simulated LLM.
    pub fn new(participant: Participant, llm_seed: u64) -> Self {
        ReproductionSession { participant, llm: SimulatedLlm::new(llm_seed) }
    }

    /// Run to completion; deterministic given the seed.
    pub fn run(self) -> SessionReport {
        self.run_with_faults(&mut FaultInjector::disabled())
    }

    /// Run under a fault injector. With the `none` profile the
    /// injector never fires (and never draws from its RNG), so this is
    /// byte-identical to [`ReproductionSession::run`].
    ///
    /// Injected faults and their recovery:
    ///
    /// * **stalled session** — the prompt is spent, no response comes
    ///   back; re-prompt while the per-component [`RetryPolicy`] budget
    ///   lasts (absorbed), give up past it (escaped);
    /// * **garbage response** — the artifact is unusable; regenerate
    ///   under the same budget;
    /// * **truncated response** — half the code arrives and it does not
    ///   compile; absorbed once the compile loops clear the injected
    ///   type error.
    pub fn run_with_faults(mut self, faults: &mut FaultInjector) -> SessionReport {
        let spec = PaperSpec::for_system(self.participant.system);
        let strategy = self.participant.strategy;
        let mut prompts: Vec<Prompt> = Vec::new();

        // Phase 0: the doomed monolithic attempt (§3.3 lesson 1). The
        // response is unusable and discarded; only the prompt cost and
        // the lesson remain.
        if strategy.start_monolithic {
            let words: u32 =
                30 + spec.components.iter().map(|c| c.description_words / 2).sum::<u32>();
            prompts.push(Prompt {
                style: PromptStyle::Monolithic,
                kind: PromptKind::Implement { component: 0 },
                words,
            });
            for (i, c) in spec.components.iter().enumerate() {
                // Generate and discard: the monolithic response exists
                // but is too defective to keep.
                let _ = self.llm.implement(c, i, PromptStyle::Monolithic);
            }
        }

        // Component order (lesson 2: pseudocode first).
        let mut order: Vec<usize> = (0..spec.components.len()).collect();
        if strategy.pseudocode_first {
            order.sort_by_key(|&i| !spec.components[i].has_pseudocode);
        }

        let retry_policy = RetryPolicy::default();
        let mut truncations: Vec<(crate::fault::FaultId, usize)> = Vec::new();
        let mut artifacts: Vec<CodeArtifact> = Vec::new();
        for &idx in &order {
            let c = &spec.components[idx];
            let implement_prompt = Prompt {
                style: strategy.style,
                kind: PromptKind::Implement { component: idx },
                words: Prompt::implement_words(strategy.style, c.description_words, c.has_pseudocode),
            };
            prompts.push(implement_prompt);

            // Stalled session: the prompt was spent but no response
            // arrived. Re-send while the per-component budget lasts;
            // past it the stall escapes (the participant moves on and
            // waits the stall out).
            let mut budget = retry_policy.budget();
            while let Some(f) = faults.roll(FaultSite::Session, FaultKind::StalledSession) {
                if budget.try_consume() {
                    prompts.push(implement_prompt);
                    faults.absorb(f);
                } else {
                    break;
                }
            }
            let mut art = self.llm.implement(c, idx, strategy.style);

            // Garbage response: the artifact is unusable; discard and
            // regenerate under the same budget.
            while let Some(f) = faults.roll(FaultSite::LlmResponse, FaultKind::GarbageResponse) {
                if budget.try_consume() {
                    prompts.push(implement_prompt);
                    art = self.llm.implement(c, idx, strategy.style);
                    faults.absorb(f);
                } else {
                    break;
                }
            }

            // Truncated response: half the code arrives and it does not
            // compile. The compile loops below are the absorption path.
            if let Some(f) = faults.roll(FaultSite::LlmResponse, FaultKind::TruncatedResponse) {
                art.truncate();
                truncations.push((f, artifacts.len()));
            }

            // Compile loop: type errors are always visible.
            let mut rounds = 0;
            while art.has(DefectKind::TypeError) && rounds < strategy.max_debug_rounds {
                let kind = PromptKind::DebugErrorMessage { component: idx };
                prompts.push(Prompt { style: strategy.style, words: Prompt::debug_words(&kind), kind });
                self.llm.debug(&mut art, DefectKind::TypeError, Guideline::ErrorMessage);
                rounds += 1;
            }

            // Test loop: bugs must first be *caught* by the participant's
            // tests, then debugged with the matching guideline.
            let mut rounds = 0;
            while rounds < strategy.max_debug_rounds {
                rounds += 1;
                let caught_simple = art.has(DefectKind::SimpleLogic)
                    && self.coin(strategy.test_quality_simple);
                let caught_complex = art.has(DefectKind::ComplexLogic)
                    && self.coin(strategy.test_quality_complex);
                if caught_simple {
                    let kind = PromptKind::DebugTestCase { component: idx };
                    prompts.push(Prompt { style: strategy.style, words: Prompt::debug_words(&kind), kind });
                    self.llm.debug(&mut art, DefectKind::SimpleLogic, Guideline::TestCase);
                } else if caught_complex {
                    let (kind, guideline) = if strategy.uses_step_by_step {
                        (PromptKind::DebugStepByStep { component: idx }, Guideline::StepByStep)
                    } else {
                        (PromptKind::DebugTestCase { component: idx }, Guideline::TestCase)
                    };
                    prompts.push(Prompt { style: strategy.style, words: Prompt::debug_words(&kind), kind });
                    self.llm.debug(&mut art, DefectKind::ComplexLogic, guideline);
                } else if !art.has(DefectKind::TypeError) {
                    break; // nothing visible left
                }
                // Churn may reintroduce type errors: clear them.
                while art.has(DefectKind::TypeError) {
                    let kind = PromptKind::DebugErrorMessage { component: idx };
                    prompts.push(Prompt { style: strategy.style, words: Prompt::debug_words(&kind), kind });
                    self.llm.debug(&mut art, DefectKind::TypeError, Guideline::ErrorMessage);
                }
            }
            artifacts.push(art);
        }

        // Integration: one prompt to piece things together, plus a
        // repair per interop mismatch that surfaces.
        prompts.push(Prompt { style: strategy.style, kind: PromptKind::Integrate, words: 60 });
        for art in artifacts.iter_mut() {
            let mut rounds = 0;
            while art.has(DefectKind::InteropMismatch) && rounds < strategy.max_debug_rounds {
                let kind = PromptKind::DebugStepByStep { component: art.component };
                prompts.push(Prompt { style: strategy.style, words: Prompt::debug_words(&kind), kind });
                // Integration failures are always visible (the pieces
                // don't fit), and the step-by-step respecification
                // rebuilds the shared types: guaranteed fix after the
                // prompt round-trip.
                self.llm.debug(art, DefectKind::InteropMismatch, Guideline::StepByStep);
                art.fix(DefectKind::InteropMismatch);
                rounds += 1;
            }
        }

        // Final compile pass: integration repairs may have churned new
        // type errors in; those always surface and get fixed.
        for art in artifacts.iter_mut() {
            while art.has(DefectKind::TypeError) {
                let kind = PromptKind::DebugErrorMessage { component: art.component };
                prompts.push(Prompt { style: strategy.style, words: Prompt::debug_words(&kind), kind });
                self.llm.debug(art, DefectKind::TypeError, Guideline::ErrorMessage);
            }
        }

        // A truncation is absorbed once the compile loops cleared the
        // type error it injected (the final pass above guarantees it).
        for (f, ai) in truncations {
            if !artifacts[ai].has(DefectKind::TypeError) {
                faults.absorb(f);
            }
        }

        let residual_defects: Vec<DefectKind> =
            artifacts.iter().flat_map(|a| a.defects.iter().copied()).collect();
        let artifact = PrototypeArtifact::assemble(&spec, &artifacts);
        SessionReport {
            participant: self.participant.name,
            prompts,
            artifact,
            residual_defects,
            component_artifacts: artifacts,
        }
    }

    fn coin(&mut self, p: f64) -> bool {
        // Participant-side randomness shares the LLM's RNG stream so a
        // single seed reproduces the entire session.
        use rand::Rng;
        self.llm.session_rng().random::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::TargetSystem;
    use crate::student::Participant;

    fn run(system: TargetSystem, seed: u64) -> SessionReport {
        ReproductionSession::new(Participant::preset(system), seed).run()
    }

    #[test]
    fn sessions_are_deterministic() {
        let a = run(TargetSystem::NcFlow, 42);
        let b = run(TargetSystem::NcFlow, 42);
        assert_eq!(a.total_prompts(), b.total_prompts());
        assert_eq!(a.total_words(), b.total_words());
        assert_eq!(a.artifact.loc, b.artifact.loc);
    }

    #[test]
    fn every_participant_finishes_with_all_components() {
        for sys in TargetSystem::EXPERIMENT {
            let r = run(sys, 7);
            let spec = crate::paper::PaperSpec::for_system(sys);
            assert_eq!(r.artifact.components, spec.components.len());
            assert!(r.artifact.loc > 0);
        }
    }

    #[test]
    fn prompt_counts_are_tens_not_thousands() {
        for sys in TargetSystem::EXPERIMENT {
            let r = run(sys, 3);
            assert!(
                (10..=200).contains(&r.total_prompts()),
                "{sys:?}: {} prompts",
                r.total_prompts()
            );
            assert!(
                (1_000..=40_000).contains(&r.total_words()),
                "{sys:?}: {} words",
                r.total_words()
            );
        }
    }

    #[test]
    fn type_errors_never_ship() {
        for sys in TargetSystem::EXPERIMENT {
            for seed in 0..10 {
                let r = run(sys, seed);
                assert!(
                    !r.residual_defects.contains(&DefectKind::TypeError),
                    "{sys:?} seed {seed} shipped a type error"
                );
            }
        }
    }

    #[test]
    fn weak_tester_ships_more_residual_bugs() {
        // Participant D (no step-by-step, weaker tests) should keep more
        // residual logic bugs than A across seeds, reproducing the §3.2
        // accuracy asymmetry at the process level.
        let total = |sys| -> usize {
            (0..40u64).map(|s| run(sys, s).residual_defects.len()).sum()
        };
        let a = total(TargetSystem::NcFlow);
        let d = total(TargetSystem::ApVerifier);
        assert!(d > a, "D residuals {d} should exceed A residuals {a}");
    }

    #[test]
    fn none_profile_is_byte_identical_to_no_fault_layer() {
        use crate::fault::{FaultPlan, FaultProfile};
        for sys in TargetSystem::EXPERIMENT {
            let plain = run(sys, 17);
            let mut inj = FaultPlan::new(FaultProfile::None, 999).injector();
            let faulted = ReproductionSession::new(Participant::preset(sys), 17)
                .run_with_faults(&mut inj);
            assert_eq!(
                serde_json::to_string(&plain).unwrap(),
                serde_json::to_string(&faulted).unwrap(),
                "{sys:?}: none profile must not perturb the session"
            );
            assert_eq!(inj.report().injected, 0);
        }
    }

    #[test]
    fn heavy_faults_never_panic_and_mostly_absorb() {
        use crate::fault::{FaultPlan, FaultProfile};
        let mut injected = 0;
        let mut absorbed = 0;
        for sys in TargetSystem::EXPERIMENT {
            for seed in 0..5u64 {
                let mut inj = FaultPlan::new(FaultProfile::Heavy, seed).injector();
                let r = ReproductionSession::new(Participant::preset(sys), seed)
                    .run_with_faults(&mut inj);
                assert!(r.artifact.loc > 0, "{sys:?} seed {seed}: session must still finish");
                assert!(
                    !r.residual_defects.contains(&DefectKind::TypeError),
                    "{sys:?} seed {seed}: truncation type errors must not ship"
                );
                let rep = inj.report();
                injected += rep.injected;
                absorbed += rep.absorbed;
            }
        }
        assert!(injected > 0, "heavy profile must actually inject");
        assert!(
            absorbed * 2 > injected,
            "most faults should be absorbed: {absorbed}/{injected}"
        );
    }

    #[test]
    fn fault_trace_is_deterministic_per_plan() {
        use crate::fault::FaultPlan;
        use crate::fault::FaultProfile;
        let mk = || {
            let mut inj = FaultPlan::new(FaultProfile::Chaos, 31).injector();
            let r = ReproductionSession::new(Participant::preset(TargetSystem::Arrow), 31)
                .run_with_faults(&mut inj);
            (r.total_prompts(), r.total_words(), inj.report())
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn retry_budget_bounds_extra_prompts() {
        use crate::fault::{FaultPlan, FaultProfile, RetryPolicy};
        // Even under chaos, re-prompts per component are capped by the
        // retry budget, so prompt growth is linear in components.
        let sys = TargetSystem::NcFlow;
        let components = crate::paper::PaperSpec::for_system(sys).components.len();
        let cap = RetryPolicy::default().max_retries as usize;
        for seed in 0..10u64 {
            let plain = run(sys, seed);
            let mut inj = FaultPlan::new(FaultProfile::Chaos, seed).injector();
            let faulted = ReproductionSession::new(Participant::preset(sys), seed)
                .run_with_faults(&mut inj);
            // Retries add at most `cap` implement prompts per component;
            // everything else (debug rounds) is already bounded by the
            // strategy. Only implement prompts are re-sent, so compare
            // those.
            let implements = |r: &SessionReport| {
                r.prompts
                    .iter()
                    .filter(|p| matches!(p.kind, crate::prompt::PromptKind::Implement { .. }))
                    .count()
            };
            assert!(
                implements(&faulted) <= implements(&plain) + components * cap,
                "seed {seed}: {} vs {} (+{} max)",
                implements(&faulted),
                implements(&plain),
                components * cap
            );
        }
    }

    #[test]
    fn rps_session_is_tiny() {
        let r = run(TargetSystem::RockPaperScissors, 0);
        assert!(r.total_prompts() <= 12, "{} prompts", r.total_prompts());
        assert!(r.artifact.loc <= 150);
    }
}
