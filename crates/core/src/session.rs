//! The reproduction session: a participant prompt-engineering the
//! (simulated) LLM from first prompt to assembled prototype.
//!
//! The loop follows the paper's §3.1 procedure and §3.3 lessons:
//!
//! 1. an initial monolithic attempt that fails and is discarded;
//! 2. component-by-component implementation (pseudocode-backed
//!    components first, when the strategy says so);
//! 3. a compile/debug loop (error-message prompts kill type errors);
//! 4. a test/debug loop (test-case prompts kill simple bugs; complex
//!    bugs need step-by-step prompts — participants who never escalate
//!    keep residual complex bugs, like participant D);
//! 5. integration, where interop mismatches surface and are repaired.

use crate::artifact::PrototypeArtifact;
use crate::llm::{CodeArtifact, DefectKind, Guideline, SimulatedLlm};
use crate::paper::PaperSpec;
use crate::prompt::{Prompt, PromptKind, PromptStyle};
use crate::student::Participant;
use serde::{Deserialize, Serialize};

/// A full session transcript plus its outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionReport {
    /// Participant letter.
    pub participant: String,
    /// Every prompt sent, in order.
    pub prompts: Vec<Prompt>,
    /// The assembled prototype.
    pub artifact: PrototypeArtifact,
    /// Defects that were never repaired (shipped in the prototype).
    pub residual_defects: Vec<DefectKind>,
}

impl SessionReport {
    /// Number of prompts (Figure 4, left axis).
    pub fn total_prompts(&self) -> usize {
        self.prompts.len()
    }

    /// Total words across prompts (Figure 4, right axis).
    pub fn total_words(&self) -> u64 {
        self.prompts.iter().map(|p| p.words as u64).sum()
    }
}

/// Drives one participant through one reproduction.
#[derive(Debug)]
pub struct ReproductionSession {
    participant: Participant,
    llm: SimulatedLlm,
}

impl ReproductionSession {
    /// A session for `participant` against a fresh simulated LLM.
    pub fn new(participant: Participant, llm_seed: u64) -> Self {
        ReproductionSession { participant, llm: SimulatedLlm::new(llm_seed) }
    }

    /// Run to completion; deterministic given the seed.
    pub fn run(mut self) -> SessionReport {
        let spec = PaperSpec::for_system(self.participant.system);
        let strategy = self.participant.strategy.clone();
        let mut prompts: Vec<Prompt> = Vec::new();

        // Phase 0: the doomed monolithic attempt (§3.3 lesson 1). The
        // response is unusable and discarded; only the prompt cost and
        // the lesson remain.
        if strategy.start_monolithic {
            let words: u32 =
                30 + spec.components.iter().map(|c| c.description_words / 2).sum::<u32>();
            prompts.push(Prompt {
                style: PromptStyle::Monolithic,
                kind: PromptKind::Implement { component: 0 },
                words,
            });
            for (i, c) in spec.components.iter().enumerate() {
                // Generate and discard: the monolithic response exists
                // but is too defective to keep.
                let _ = self.llm.implement(c, i, PromptStyle::Monolithic);
            }
        }

        // Component order (lesson 2: pseudocode first).
        let mut order: Vec<usize> = (0..spec.components.len()).collect();
        if strategy.pseudocode_first {
            order.sort_by_key(|&i| !spec.components[i].has_pseudocode);
        }

        let mut artifacts: Vec<CodeArtifact> = Vec::new();
        for &idx in &order {
            let c = &spec.components[idx];
            prompts.push(Prompt {
                style: strategy.style,
                kind: PromptKind::Implement { component: idx },
                words: Prompt::implement_words(strategy.style, c.description_words, c.has_pseudocode),
            });
            let mut art = self.llm.implement(c, idx, strategy.style);

            // Compile loop: type errors are always visible.
            let mut rounds = 0;
            while art.has(DefectKind::TypeError) && rounds < strategy.max_debug_rounds {
                let kind = PromptKind::DebugErrorMessage { component: idx };
                prompts.push(Prompt { style: strategy.style, words: Prompt::debug_words(&kind), kind });
                self.llm.debug(&mut art, DefectKind::TypeError, Guideline::ErrorMessage);
                rounds += 1;
            }

            // Test loop: bugs must first be *caught* by the participant's
            // tests, then debugged with the matching guideline.
            let mut rounds = 0;
            while rounds < strategy.max_debug_rounds {
                rounds += 1;
                let caught_simple = art.has(DefectKind::SimpleLogic)
                    && self.coin(strategy.test_quality_simple);
                let caught_complex = art.has(DefectKind::ComplexLogic)
                    && self.coin(strategy.test_quality_complex);
                if caught_simple {
                    let kind = PromptKind::DebugTestCase { component: idx };
                    prompts.push(Prompt { style: strategy.style, words: Prompt::debug_words(&kind), kind });
                    self.llm.debug(&mut art, DefectKind::SimpleLogic, Guideline::TestCase);
                } else if caught_complex {
                    let (kind, guideline) = if strategy.uses_step_by_step {
                        (PromptKind::DebugStepByStep { component: idx }, Guideline::StepByStep)
                    } else {
                        (PromptKind::DebugTestCase { component: idx }, Guideline::TestCase)
                    };
                    prompts.push(Prompt { style: strategy.style, words: Prompt::debug_words(&kind), kind });
                    self.llm.debug(&mut art, DefectKind::ComplexLogic, guideline);
                } else if !art.has(DefectKind::TypeError) {
                    break; // nothing visible left
                }
                // Churn may reintroduce type errors: clear them.
                while art.has(DefectKind::TypeError) {
                    let kind = PromptKind::DebugErrorMessage { component: idx };
                    prompts.push(Prompt { style: strategy.style, words: Prompt::debug_words(&kind), kind });
                    self.llm.debug(&mut art, DefectKind::TypeError, Guideline::ErrorMessage);
                }
            }
            artifacts.push(art);
        }

        // Integration: one prompt to piece things together, plus a
        // repair per interop mismatch that surfaces.
        prompts.push(Prompt { style: strategy.style, kind: PromptKind::Integrate, words: 60 });
        for art in artifacts.iter_mut() {
            let mut rounds = 0;
            while art.has(DefectKind::InteropMismatch) && rounds < strategy.max_debug_rounds {
                let kind = PromptKind::DebugStepByStep { component: art.component };
                prompts.push(Prompt { style: strategy.style, words: Prompt::debug_words(&kind), kind });
                // Integration failures are always visible (the pieces
                // don't fit), and the step-by-step respecification
                // rebuilds the shared types: guaranteed fix after the
                // prompt round-trip.
                self.llm.debug(art, DefectKind::InteropMismatch, Guideline::StepByStep);
                art.fix(DefectKind::InteropMismatch);
                rounds += 1;
            }
        }

        // Final compile pass: integration repairs may have churned new
        // type errors in; those always surface and get fixed.
        for art in artifacts.iter_mut() {
            while art.has(DefectKind::TypeError) {
                let kind = PromptKind::DebugErrorMessage { component: art.component };
                prompts.push(Prompt { style: strategy.style, words: Prompt::debug_words(&kind), kind });
                self.llm.debug(art, DefectKind::TypeError, Guideline::ErrorMessage);
            }
        }

        let residual_defects: Vec<DefectKind> =
            artifacts.iter().flat_map(|a| a.defects.iter().copied()).collect();
        let artifact = PrototypeArtifact::assemble(&spec, &artifacts);
        SessionReport {
            participant: self.participant.name.clone(),
            prompts,
            artifact,
            residual_defects,
        }
    }

    fn coin(&mut self, p: f64) -> bool {
        // Participant-side randomness shares the LLM's RNG stream so a
        // single seed reproduces the entire session.
        use rand::Rng;
        self.llm.session_rng().random::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::TargetSystem;
    use crate::student::Participant;

    fn run(system: TargetSystem, seed: u64) -> SessionReport {
        ReproductionSession::new(Participant::preset(system), seed).run()
    }

    #[test]
    fn sessions_are_deterministic() {
        let a = run(TargetSystem::NcFlow, 42);
        let b = run(TargetSystem::NcFlow, 42);
        assert_eq!(a.total_prompts(), b.total_prompts());
        assert_eq!(a.total_words(), b.total_words());
        assert_eq!(a.artifact.loc, b.artifact.loc);
    }

    #[test]
    fn every_participant_finishes_with_all_components() {
        for sys in TargetSystem::EXPERIMENT {
            let r = run(sys, 7);
            let spec = crate::paper::PaperSpec::for_system(sys);
            assert_eq!(r.artifact.components, spec.components.len());
            assert!(r.artifact.loc > 0);
        }
    }

    #[test]
    fn prompt_counts_are_tens_not_thousands() {
        for sys in TargetSystem::EXPERIMENT {
            let r = run(sys, 3);
            assert!(
                (10..=200).contains(&r.total_prompts()),
                "{sys:?}: {} prompts",
                r.total_prompts()
            );
            assert!(
                (1_000..=40_000).contains(&r.total_words()),
                "{sys:?}: {} words",
                r.total_words()
            );
        }
    }

    #[test]
    fn type_errors_never_ship() {
        for sys in TargetSystem::EXPERIMENT {
            for seed in 0..10 {
                let r = run(sys, seed);
                assert!(
                    !r.residual_defects.contains(&DefectKind::TypeError),
                    "{sys:?} seed {seed} shipped a type error"
                );
            }
        }
    }

    #[test]
    fn weak_tester_ships_more_residual_bugs() {
        // Participant D (no step-by-step, weaker tests) should keep more
        // residual logic bugs than A across seeds, reproducing the §3.2
        // accuracy asymmetry at the process level.
        let total = |sys| -> usize {
            (0..40u64).map(|s| run(sys, s).residual_defects.len()).sum()
        };
        let a = total(TargetSystem::NcFlow);
        let d = total(TargetSystem::ApVerifier);
        assert!(d > a, "D residuals {d} should exceed A residuals {a}");
    }

    #[test]
    fn rps_session_is_tiny() {
        let r = run(TargetSystem::RockPaperScissors, 0);
        assert!(r.total_prompts() <= 12, "{} prompts", r.total_prompts());
        assert!(r.artifact.loc <= 150);
    }
}
