//! Participant strategies.
//!
//! A strategy fixes *how* a participant prompts and debugs. The presets
//! mirror the four participants of §3: all of them start with a
//! monolithic attempt (which fails, per §3.3) and switch to modular
//! prompting; two of them discover pseudocode-first; participant D, a
//! non-CS major, writes fewer tests and rarely escalates to
//! step-by-step re-specification.

use crate::paper::TargetSystem;
use crate::prompt::PromptStyle;
use serde::{Deserialize, Serialize};

/// A participant's prompting/debugging policy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Strategy {
    /// Style used after the initial monolithic failure.
    pub style: PromptStyle,
    /// Try the whole-system prompt first (all participants did).
    pub start_monolithic: bool,
    /// Reorder components so pseudocode-backed ones come first.
    pub pseudocode_first: bool,
    /// Probability the participant's test cases catch a simple bug per
    /// testing round.
    pub test_quality_simple: f64,
    /// Probability of catching a complex bug per testing round.
    pub test_quality_complex: f64,
    /// Whether the participant escalates to step-by-step prompts for
    /// complex bugs (vs retrying with test cases).
    pub uses_step_by_step: bool,
    /// Debug rounds per defect before giving up (residual defect).
    pub max_debug_rounds: u32,
}

/// A participant: identity plus strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Participant {
    /// Participant letter ("A".."D").
    pub name: String,
    /// The system they reproduce.
    pub system: TargetSystem,
    /// Their policy.
    pub strategy: Strategy,
}

impl Participant {
    /// The preset matching the paper's participant for `system`.
    pub fn preset(system: TargetSystem) -> Participant {
        let strategy = match system {
            // A: CS master's student; found pseudocode-first.
            TargetSystem::NcFlow => Strategy {
                style: PromptStyle::ModularPseudocode,
                start_monolithic: true,
                pseudocode_first: true,
                test_quality_simple: 0.9,
                test_quality_complex: 0.7,
                uses_step_by_step: true,
                max_debug_rounds: 6,
            },
            // B: modular text prompting straight from the paper text.
            TargetSystem::Arrow => Strategy {
                style: PromptStyle::ModularText,
                start_monolithic: true,
                pseudocode_first: false,
                test_quality_simple: 0.85,
                test_quality_complex: 0.65,
                uses_step_by_step: true,
                max_debug_rounds: 6,
            },
            // C: the other pseudocode-first discoverer.
            TargetSystem::ApKeep => Strategy {
                style: PromptStyle::ModularPseudocode,
                start_monolithic: true,
                pseudocode_first: true,
                test_quality_simple: 0.9,
                test_quality_complex: 0.7,
                uses_step_by_step: true,
                max_debug_rounds: 6,
            },
            // D: information-and-computing-science major; fewer tests,
            // no step-by-step escalation.
            TargetSystem::ApVerifier => Strategy {
                style: PromptStyle::ModularText,
                start_monolithic: true,
                pseudocode_first: false,
                test_quality_simple: 0.75,
                test_quality_complex: 0.5,
                uses_step_by_step: false,
                max_debug_rounds: 5,
            },
            // The undergrad of the motivating example: 4 prompts total,
            // so no monolithic detour and no heavy debugging.
            TargetSystem::RockPaperScissors => Strategy {
                style: PromptStyle::ModularText,
                start_monolithic: false,
                pseudocode_first: false,
                test_quality_simple: 0.9,
                test_quality_complex: 0.8,
                uses_step_by_step: false,
                max_debug_rounds: 2,
            },
        };
        Participant {
            name: system.participant().to_string(),
            system,
            strategy,
        }
    }

    /// All four experiment participants in order.
    pub fn experiment_roster() -> Vec<Participant> {
        TargetSystem::EXPERIMENT.iter().map(|&s| Participant::preset(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_matches_paper() {
        let roster = Participant::experiment_roster();
        assert_eq!(roster.len(), 4);
        assert_eq!(roster[0].name, "A");
        assert_eq!(roster[0].system, TargetSystem::NcFlow);
        assert_eq!(roster[3].name, "D");
        assert_eq!(roster[3].system, TargetSystem::ApVerifier);
    }

    #[test]
    fn everyone_starts_monolithic() {
        for p in Participant::experiment_roster() {
            assert!(p.strategy.start_monolithic, "{} must start monolithic", p.name);
        }
    }

    #[test]
    fn d_is_the_weakest_tester() {
        let roster = Participant::experiment_roster();
        let d = &roster[3];
        for p in &roster[..3] {
            assert!(d.strategy.test_quality_simple <= p.strategy.test_quality_simple);
        }
        assert!(!d.strategy.uses_step_by_step);
    }

    #[test]
    fn pseudocode_first_pairs_with_pseudocode_style() {
        for p in Participant::experiment_roster() {
            if p.strategy.pseudocode_first {
                assert_eq!(p.strategy.style, PromptStyle::ModularPseudocode);
            }
        }
    }
}
