//! Transcript rendering: turn a [`SessionReport`] into the kind of
//! readable conversation log the paper's authors published alongside
//! the experiment (reference [15] — a Dropbox of ChatGPT logs).
//!
//! The renderer is deterministic and lossless with respect to prompt
//! structure: one numbered entry per prompt, grouped by phase, with
//! word counts and a final artifact summary. It exists so sessions can
//! be archived, diffed and inspected the way the originals were.

use crate::paper::PaperSpec;
use crate::prompt::{PromptKind, PromptStyle};
use crate::session::SessionReport;

/// Render a full session log.
pub fn render(report: &SessionReport, spec: &PaperSpec) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "=== reproduction log — participant {} / {} ===\n",
        report.participant,
        spec.system.name()
    ));
    out.push_str(&format!(
        "{} prompts, {} words total\n\n",
        report.total_prompts(),
        report.total_words()
    ));

    let mut current_component: Option<usize> = None;
    for (i, p) in report.prompts.iter().enumerate() {
        let comp = component_of(&p.kind);
        if comp != current_component {
            current_component = comp;
            match comp {
                Some(c) => out.push_str(&format!(
                    "\n-- component {}: {} --\n",
                    c + 1,
                    spec.components
                        .get(c)
                        .map(|s| s.name.as_str())
                        .unwrap_or("<unknown>")
                )),
                None => out.push_str("\n-- integration --\n"),
            }
        }
        out.push_str(&format!(
            "[{:>3}] {:<12} {:<28} ({} words)\n",
            i + 1,
            style_tag(p.style),
            kind_tag(&p.kind),
            p.words
        ));
    }

    out.push_str(&format!(
        "\n=== artifact: {} LoC over {} components ({:.0}% of open-source) ===\n",
        report.artifact.loc,
        report.artifact.components,
        100.0 * report.artifact.loc_ratio()
    ));
    if report.residual_defects.is_empty() {
        out.push_str("residual defects: none\n");
    } else {
        out.push_str(&format!("residual defects: {:?}\n", report.residual_defects));
    }
    out
}

fn component_of(kind: &PromptKind) -> Option<usize> {
    match kind {
        PromptKind::Implement { component }
        | PromptKind::DebugErrorMessage { component }
        | PromptKind::DebugTestCase { component }
        | PromptKind::DebugStepByStep { component } => Some(*component),
        PromptKind::Integrate => None,
    }
}

fn style_tag(style: PromptStyle) -> &'static str {
    match style {
        PromptStyle::Monolithic => "monolithic",
        PromptStyle::ModularText => "modular",
        PromptStyle::ModularPseudocode => "pseudocode",
    }
}

fn kind_tag(kind: &PromptKind) -> String {
    match kind {
        PromptKind::Implement { .. } => "implement".into(),
        PromptKind::DebugErrorMessage { .. } => "debug: error message".into(),
        PromptKind::DebugTestCase { .. } => "debug: failing test case".into(),
        PromptKind::DebugStepByStep { .. } => "debug: step-by-step spec".into(),
        PromptKind::Integrate => "integrate components".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::TargetSystem;
    use crate::student::Participant;
    use crate::ReproductionSession;

    fn sample() -> (SessionReport, PaperSpec) {
        let r = ReproductionSession::new(Participant::preset(TargetSystem::NcFlow), 11).run();
        (r, PaperSpec::for_system(TargetSystem::NcFlow))
    }

    #[test]
    fn renders_header_and_footer() {
        let (r, spec) = sample();
        let log = render(&r, &spec);
        assert!(log.contains("participant A / NCFlow"));
        assert!(log.contains("=== artifact:"));
    }

    #[test]
    fn one_line_per_prompt() {
        let (r, spec) = sample();
        let log = render(&r, &spec);
        let entries = log.lines().filter(|l| l.trim_start().starts_with('[')).count();
        assert_eq!(entries, r.total_prompts());
    }

    #[test]
    fn names_components_from_the_spec() {
        let (r, spec) = sample();
        let log = render(&r, &spec);
        assert!(log.contains(&spec.components[0].name));
    }

    #[test]
    fn deterministic() {
        let (r, spec) = sample();
        assert_eq!(render(&r, &spec), render(&r, &spec));
    }
}
