//! The unified prompt-engineering framework of §4 — the paper's first
//! two open research questions, made executable.
//!
//! §4 sketches a top-down framework: (1) describe the key components,
//! (2) define the interfaces, (3) generate each component, (4) test and
//! debug it, (5) repeat, (6) integrate and test the whole system — and
//! proposes *(semi-)automating* it. [`AutoEngineer`] is that
//! automation over the simulated LLM: it plans the six steps from a
//! [`PaperSpec`], runs them without a human in the loop, and *adapts*
//! — it tries the cheap strategy first and upgrades (modular →
//! pseudocode-first, more debugging budget) when validation rejects the
//! artifact, which is exactly the adaptive behaviour the paper's
//! participants showed manually.

use crate::fault::FaultInjector;
use crate::llm::DefectKind;
use crate::paper::{PaperSpec, TargetSystem};
use crate::prompt::PromptStyle;
use crate::session::{ReproductionSession, SessionReport};
use crate::student::{Participant, Strategy};
use serde::{Deserialize, Serialize};

/// One of the framework's six steps (§4, "Handling the diversity…").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Step {
    /// Describe the system's key components to the LLM.
    DescribeComponents,
    /// Ask the LLM to define the inter-component interfaces.
    DefineInterfaces,
    /// Generate the code of one component.
    GenerateComponent,
    /// Test and debug the component.
    TestComponent,
    /// Iterate over the remaining components.
    Repeat,
    /// Integrate and test the complete system.
    IntegrateSystem,
}

/// The framework's plan for a paper: the step sequence with component
/// fan-out resolved.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Plan {
    /// Target system.
    pub system: TargetSystem,
    /// Flattened step schedule.
    pub steps: Vec<Step>,
    /// Component order (pseudocode-backed first).
    pub component_order: Vec<usize>,
}

impl Plan {
    /// Derive the plan from a paper spec.
    pub fn derive(spec: &PaperSpec) -> Plan {
        let mut component_order: Vec<usize> = (0..spec.components.len()).collect();
        // The framework bakes in lesson 2: pseudocode-backed components
        // first, to pin the shared data types early.
        component_order.sort_by_key(|&i| !spec.components[i].has_pseudocode);
        let mut steps = vec![Step::DescribeComponents, Step::DefineInterfaces];
        for _ in &component_order {
            steps.push(Step::GenerateComponent);
            steps.push(Step::TestComponent);
            steps.push(Step::Repeat);
        }
        steps.pop(); // no Repeat after the last component
        steps.push(Step::IntegrateSystem);
        Plan { system: spec.system, steps, component_order }
    }

    /// Number of component-generation steps.
    pub fn num_components(&self) -> usize {
        self.component_order.len()
    }
}

/// Outcome of one automatic attempt.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Attempt {
    /// The strategy used.
    pub style: PromptStyle,
    /// The session transcript.
    pub report: SessionReport,
    /// Whether the validation gate accepted the artifact.
    pub accepted: bool,
}

/// The automatic engineer: plans, runs, validates, escalates.
#[derive(Debug, Clone)]
pub struct AutoEngineer {
    /// Maximum strategy escalations before giving up.
    pub max_attempts: usize,
    /// Residual-defect budget the validation gate tolerates (0 = fully
    /// clean artifact required).
    pub accept_residual_defects: usize,
}

impl Default for AutoEngineer {
    fn default() -> Self {
        AutoEngineer { max_attempts: 3, accept_residual_defects: 0 }
    }
}

impl AutoEngineer {
    /// Run the framework for `system` with the given seed. Returns every
    /// attempt (last one accepted, unless the budget ran out).
    pub fn run(&self, system: TargetSystem, seed: u64) -> Vec<Attempt> {
        self.run_with_faults(system, seed, &mut FaultInjector::disabled())
    }

    /// Fault-aware run with *checkpointed escalation*: a checkpoint is
    /// taken in the fault ledger before each attempt, and an attempt
    /// whose window let any fault escape is rejected even when the
    /// defect gate would accept it — the engineer cannot trust an
    /// artifact produced by a session whose failures went unhandled,
    /// so it escalates the strategy and retries, exactly as it does
    /// for residual defects. With a disabled injector this is
    /// [`AutoEngineer::run`].
    pub fn run_with_faults(
        &self,
        system: TargetSystem,
        seed: u64,
        faults: &mut FaultInjector,
    ) -> Vec<Attempt> {
        let mut attempts = Vec::new();
        // Escalation ladder: plain modular text → pseudocode-first →
        // pseudocode-first with a bigger debugging budget.
        let ladder: [Strategy; 3] = [
            Strategy {
                style: PromptStyle::ModularText,
                start_monolithic: false,
                pseudocode_first: false,
                test_quality_simple: 0.9,
                test_quality_complex: 0.7,
                uses_step_by_step: true,
                max_debug_rounds: 4,
            },
            Strategy {
                style: PromptStyle::ModularPseudocode,
                start_monolithic: false,
                pseudocode_first: true,
                test_quality_simple: 0.9,
                test_quality_complex: 0.7,
                uses_step_by_step: true,
                max_debug_rounds: 6,
            },
            Strategy {
                style: PromptStyle::ModularPseudocode,
                start_monolithic: false,
                pseudocode_first: true,
                test_quality_simple: 0.95,
                test_quality_complex: 0.85,
                uses_step_by_step: true,
                max_debug_rounds: 10,
            },
        ];
        for (i, strategy) in ladder.into_iter().enumerate().take(self.max_attempts) {
            let participant = Participant {
                name: format!("auto-{}", i + 1),
                system,
                strategy,
            };
            let checkpoint = faults.checkpoint();
            let report = ReproductionSession::new(participant, seed.wrapping_add(i as u64))
                .run_with_faults(faults);
            let accepted = self.gate(&report) && faults.escaped_since(checkpoint) == 0;
            let style = strategy.style;
            attempts.push(Attempt { style, report, accepted });
            if accepted {
                break;
            }
        }
        attempts
    }

    /// The validation gate: the §3.1 procedure's "compare with the
    /// open-source prototype on small test cases", abstracted as a
    /// residual-defect budget (logic bugs are what the comparison
    /// catches; interop/type bugs never survive a session).
    fn gate(&self, report: &SessionReport) -> bool {
        let logic_bugs = report
            .residual_defects
            .iter()
            .filter(|d| matches!(d, DefectKind::SimpleLogic | DefectKind::ComplexLogic))
            .count();
        logic_bugs <= self.accept_residual_defects
    }

    /// Total prompt cost across attempts (the efficiency metric §4's
    /// automation question optimises).
    pub fn total_prompts(attempts: &[Attempt]) -> usize {
        attempts.iter().map(|a| a.report.total_prompts()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_has_six_step_shape() {
        let spec = PaperSpec::for_system(TargetSystem::NcFlow);
        let plan = Plan::derive(&spec);
        assert_eq!(plan.steps[0], Step::DescribeComponents);
        assert_eq!(plan.steps[1], Step::DefineInterfaces);
        assert_eq!(*plan.steps.last().unwrap(), Step::IntegrateSystem);
        assert_eq!(plan.num_components(), spec.components.len());
        let gens = plan.steps.iter().filter(|&&s| s == Step::GenerateComponent).count();
        assert_eq!(gens, spec.components.len());
    }

    #[test]
    fn plan_orders_pseudocode_first() {
        let spec = PaperSpec::for_system(TargetSystem::ApKeep);
        let plan = Plan::derive(&spec);
        let mut seen_text = false;
        for &i in &plan.component_order {
            if spec.components[i].has_pseudocode {
                assert!(!seen_text, "pseudocode component after a text-only one");
            } else {
                seen_text = true;
            }
        }
    }

    #[test]
    fn auto_engineer_terminates_with_attempts() {
        let auto = AutoEngineer::default();
        for sys in TargetSystem::EXPERIMENT {
            let attempts = auto.run(sys, 2023);
            assert!(!attempts.is_empty() && attempts.len() <= 3);
            // Either some attempt was accepted or all three ran.
            let accepted = attempts.iter().any(|a| a.accepted);
            assert!(accepted || attempts.len() == 3, "{sys:?}");
        }
    }

    #[test]
    fn escalation_only_on_rejection() {
        let auto = AutoEngineer::default();
        for seed in 0..20u64 {
            let attempts = auto.run(TargetSystem::ApVerifier, seed);
            for a in &attempts[..attempts.len() - 1] {
                assert!(!a.accepted, "accepted attempt must be the last");
            }
        }
    }

    #[test]
    fn acceptance_rate_improves_with_escalation() {
        // Across seeds, attempt 2 (pseudocode-first) must be accepted
        // more often than attempt 1 was.
        let auto = AutoEngineer::default();
        let mut first_ok = 0;
        let mut second_ok = 0;
        let mut second_ran = 0;
        for seed in 0..60u64 {
            let attempts = auto.run(TargetSystem::Arrow, seed);
            if attempts[0].accepted {
                first_ok += 1;
            } else if let Some(a) = attempts.get(1) {
                second_ran += 1;
                if a.accepted {
                    second_ok += 1;
                }
            }
        }
        assert!(second_ran > 0, "escalation never exercised");
        let p1 = first_ok as f64 / 60.0;
        let p2 = second_ok as f64 / second_ran as f64;
        assert!(
            p2 > p1 * 0.8,
            "escalated strategy should hold its own: p1={p1:.2} p2={p2:.2}"
        );
    }

    #[test]
    fn deterministic() {
        let auto = AutoEngineer::default();
        let a = auto.run(TargetSystem::NcFlow, 5);
        let b = auto.run(TargetSystem::NcFlow, 5);
        assert_eq!(a.len(), b.len());
        assert_eq!(
            AutoEngineer::total_prompts(&a),
            AutoEngineer::total_prompts(&b)
        );
    }

    #[test]
    fn escaped_faults_force_escalation() {
        use crate::fault::{FaultOutcome, FaultPlan, FaultProfile};
        let auto = AutoEngineer::default();
        // Under chaos, stall/garbage budgets overflow regularly; find a
        // seed whose first-attempt window leaks a fault and check the
        // engineer escalated past it.
        let mut exercised = false;
        for seed in 0..30u64 {
            let mut inj = FaultPlan::new(FaultProfile::Chaos, seed).injector();
            let attempts = auto.run_with_faults(TargetSystem::NcFlow, seed, &mut inj);
            assert!(!attempts.is_empty() && attempts.len() <= 3);
            let trace = inj.report().trace;
            // Reconstruct the per-attempt escape windows the engineer saw.
            if attempts.len() > 1
                && trace.iter().any(|e| e.outcome == FaultOutcome::Escaped)
            {
                exercised = true;
            }
            // Every non-final attempt must have been rejected.
            for a in &attempts[..attempts.len() - 1] {
                assert!(!a.accepted);
            }
        }
        assert!(exercised, "chaos never produced an escalation-with-escapes run");
    }

    #[test]
    fn disabled_injector_matches_plain_run() {
        let auto = AutoEngineer::default();
        let plain = auto.run(TargetSystem::Arrow, 9);
        let mut inj = FaultInjector::disabled();
        let faulted = auto.run_with_faults(TargetSystem::Arrow, 9, &mut inj);
        assert_eq!(plain.len(), faulted.len());
        assert_eq!(
            AutoEngineer::total_prompts(&plain),
            AutoEngineer::total_prompts(&faulted)
        );
        assert_eq!(inj.report().injected, 0);
    }
}
