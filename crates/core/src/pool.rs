//! Bounded worker pool with a reorder buffer for the parallel sweep
//! executor.
//!
//! The sweep matrix is embarrassingly parallel *by construction*:
//! every cell derives its RNG streams from its own key
//! ([`crate::harness::derive_seed`]), so execution order cannot perturb
//! any cell's outcome. What is **not** order-free is supervision state
//! — the virtual clock and the per-class circuit breaker — so the pool
//! splits the two:
//!
//! * **Workers** claim cells in canonical order from a shared cursor
//!   and execute them *speculatively*, out of order, with no access to
//!   clock or breaker state.
//! * **The commit loop** (the caller's thread) receives finished cells
//!   into a reorder buffer and commits them strictly in canonical
//!   matrix order. All supervision decisions — skip-by-breaker,
//!   clock assignment, journal append — happen at commit, in
//!   `harness::commit_cell`, so the journal and report are
//!   byte-identical for every worker count.
//! * **Bounded speculation** — workers may run at most
//!   `workers × SPECULATION_PER_WORKER` cells ahead of the commit
//!   frontier, so a slow sink (e.g. a throttled journal) cannot make
//!   the reorder buffer grow without bound.
//!
//! Worker-site faults ([`crate::fault::FaultSite::Worker`]) strike the
//! pool machinery itself, not the cell: a `worker-crash` kills the
//! worker's execution of a cell mid-flight (the pool catches the typed
//! panic and re-executes the cell — outcomes are pure, so the retry is
//! sound), and a `worker-stall` deschedules the worker, perturbing
//! completion order. Both are absorbed entirely inside the pool and
//! are tracked in [`PoolStats`], never in the journal: a faulted
//! parallel run must still be byte-identical to `--workers 1`.
//!
//! Any *other* panic escaping a cell is a genuine bug: the worker
//! ships the payload to the commit loop, which re-raises it with
//! `resume_unwind` at the cell's canonical commit slot — the same
//! boundary where a serial run would have died, with the same journal
//! prefix on disk.

use crate::fault::{FaultKind, FaultPlan, FaultSite};
use crate::harness::{derive_seed, CellId, SALT_WORKER};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex, MutexGuard};

/// How many cells each worker may speculate past the commit frontier.
const SPECULATION_PER_WORKER: usize = 4;

/// How many scheduler yields an injected `worker-stall` burns.
const STALL_YIELDS: u32 = 8;

/// Panic payload for an injected worker crash — distinguishable by
/// downcast from both a genuine bug and an in-cell
/// [`crate::harness::InjectedCrash`].
#[derive(Debug, Clone, Copy)]
pub struct InjectedWorkerCrash {
    /// The cell the worker was holding when it died.
    pub cell: CellId,
}

/// What the pool machinery absorbed, over and above the cell outcomes.
/// Deliberately *not* part of the byte-compared report: worker-site
/// faults must leave the journal untouched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Cell executions that ran to completion on a worker (an injected
    /// crash kills the worker *before* the cell runs, so each cell
    /// completes exactly once).
    pub executed: u64,
    /// Injected worker crashes absorbed by re-execution.
    pub crashes_absorbed: u64,
    /// Injected worker stalls absorbed by rescheduling.
    pub stalls_absorbed: u64,
}

#[derive(Default)]
struct StatCounters {
    executed: AtomicU64,
    crashes: AtomicU64,
    stalls: AtomicU64,
}

impl StatCounters {
    fn snapshot(&self) -> PoolStats {
        PoolStats {
            executed: self.executed.load(Ordering::Relaxed),
            crashes_absorbed: self.crashes.load(Ordering::Relaxed),
            stalls_absorbed: self.stalls.load(Ordering::Relaxed),
        }
    }
}

/// Shared dispatch state: the claim cursor, the commit frontier, and
/// the stop flag. Workers wait on the condvar while the speculation
/// window is full.
struct Gate {
    state: Mutex<DispatchState>,
    ready: Condvar,
    window: usize,
    total: usize,
}

struct DispatchState {
    next: usize,
    committed: usize,
    stop: bool,
}

impl Gate {
    fn new(total: usize, window: usize) -> Gate {
        Gate {
            state: Mutex::new(DispatchState { next: 0, committed: 0, stop: false }),
            ready: Condvar::new(),
            window,
            total,
        }
    }

    /// Lock the state, recovering the guard from a poisoned mutex: a
    /// worker that panicked between lock and unlock only ever held
    /// plain counters, which stay internally consistent.
    fn lock(&self) -> MutexGuard<'_, DispatchState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Claim the next cell index, blocking while the speculation window
    /// is full. `None` means no work remains (or the pool is stopping).
    fn claim(&self) -> Option<usize> {
        let mut g = self.lock();
        loop {
            if g.stop || g.next >= self.total {
                return None;
            }
            if g.next < g.committed + self.window {
                let i = g.next;
                g.next += 1;
                return Some(i);
            }
            g = self.ready.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Advance the commit frontier, releasing waiting workers.
    fn advance(&self, committed: usize) {
        let mut g = self.lock();
        g.committed = committed;
        drop(g);
        self.ready.notify_all();
    }

    /// Stop the pool: wake every waiting worker so it can exit.
    fn shutdown(&self) {
        let mut g = self.lock();
        g.stop = true;
        drop(g);
        self.ready.notify_all();
    }
}

/// Shuts the pool down when dropped — including during an unwind out
/// of the commit loop, so workers parked on the window condvar can
/// never deadlock a propagating panic or an early `Err` return.
struct ShutdownGuard<'a>(&'a Gate);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Execute one cell on a worker, absorbing injected worker-site
/// faults. Returns the execute result or a genuine panic payload.
fn worker_execute<W, X>(
    cell: CellId,
    execute: &X,
    stats: &StatCounters,
) -> std::thread::Result<W>
where
    X: Fn(CellId) -> W,
{
    let mut faults = FaultPlan::new(cell.profile, derive_seed(cell, 0, SALT_WORKER)).injector();
    if let Some(id) = faults.roll(FaultSite::Worker, FaultKind::WorkerStall) {
        for _ in 0..STALL_YIELDS {
            std::thread::yield_now();
        }
        faults.absorb(id);
        stats.stalls.fetch_add(1, Ordering::Relaxed);
    }
    let crash = faults.roll(FaultSite::Worker, FaultKind::WorkerCrash);
    let first = catch_unwind(AssertUnwindSafe(|| {
        if crash.is_some() {
            std::panic::panic_any(InjectedWorkerCrash { cell });
        }
        stats.executed.fetch_add(1, Ordering::Relaxed);
        execute(cell)
    }));
    match first {
        Err(payload) if payload.downcast_ref::<InjectedWorkerCrash>().is_some() => {
            // The worker died at the pool layer before (or instead of)
            // finishing the cell; cell execution is a pure function of
            // the cell id, so re-executing is sound and the fault is
            // absorbed invisibly.
            if let Some(id) = crash {
                faults.absorb(id);
            }
            stats.crashes.fetch_add(1, Ordering::Relaxed);
            stats.executed.fetch_add(1, Ordering::Relaxed);
            catch_unwind(AssertUnwindSafe(|| execute(cell)))
        }
        other => other,
    }
}

/// Run `cells` through `execute` on `workers` threads, delivering each
/// result to `commit` **in slice order** through a reorder buffer.
/// `commit` receives the cell's offset within `cells` plus the
/// produced work; an `Err` from `commit` stops the pool and is
/// returned. A genuine panic inside `execute` is re-raised on the
/// caller's thread at the cell's commit slot.
pub(crate) fn run_ordered<W, X, C>(
    workers: usize,
    cells: &[CellId],
    execute: X,
    commit: C,
) -> Result<PoolStats, String>
where
    W: Send,
    X: Fn(CellId) -> W + Sync,
    C: FnMut(usize, W) -> Result<(), String>,
{
    run_ordered_core(
        workers,
        cells.len(),
        |i, stats| worker_execute(cells[i], &execute, stats),
        commit,
    )
}

/// Run arbitrary work items through `execute` on `workers` threads,
/// delivering each result to `commit` **in slice order** through the
/// same bounded reorder buffer the sweep uses. Unlike [`run_ordered`],
/// items carry no [`CellId`], so no worker-site faults are injected —
/// this is the plain deterministic fan-out used by the partitioned DPV
/// runner ([`crate::dpv_scale`]): each item is a destination chunk and
/// the commit order makes the merged verdict stream canonical whatever
/// the worker count.
pub fn run_ordered_items<T, W, X, C>(
    workers: usize,
    items: &[T],
    execute: X,
    commit: C,
) -> Result<PoolStats, String>
where
    T: Sync,
    W: Send,
    X: Fn(usize, &T) -> W + Sync,
    C: FnMut(usize, W) -> Result<(), String>,
{
    run_ordered_core(
        workers,
        items.len(),
        |i, stats| {
            let r = catch_unwind(AssertUnwindSafe(|| execute(i, &items[i])));
            if r.is_ok() {
                stats.executed.fetch_add(1, Ordering::Relaxed);
            }
            r
        },
        commit,
    )
}

/// The shared pool engine: claim indices in canonical order through the
/// speculation gate, execute out of order, commit strictly in order.
/// `execute` returns a `thread::Result` so the caller layer decides
/// what counts as an absorbable fault; whatever still comes back as
/// `Err` is a genuine panic, re-raised at the item's commit slot.
fn run_ordered_core<W, X, C>(
    workers: usize,
    total: usize,
    execute: X,
    mut commit: C,
) -> Result<PoolStats, String>
where
    W: Send,
    X: Fn(usize, &StatCounters) -> std::thread::Result<W> + Sync,
    C: FnMut(usize, W) -> Result<(), String>,
{
    if total == 0 {
        return Ok(PoolStats::default());
    }
    let workers = workers.clamp(1, total);
    let gate = Gate::new(total, workers * SPECULATION_PER_WORKER);
    let stats = StatCounters::default();
    let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<W>)>();

    std::thread::scope(|scope| {
        // Dropped on every exit path (Ok, Err, unwind), releasing any
        // worker parked on the speculation window before scope join.
        let _stop_on_exit = ShutdownGuard(&gate);
        for _ in 0..workers {
            let tx = tx.clone();
            let gate = &gate;
            let stats = &stats;
            let execute = &execute;
            scope.spawn(move || {
                while let Some(i) = gate.claim() {
                    let outcome = execute(i, stats);
                    if tx.send((i, outcome)).is_err() {
                        break; // commit loop is gone; stop quietly
                    }
                }
            });
        }
        drop(tx);

        let mut buffer: BTreeMap<usize, std::thread::Result<W>> = BTreeMap::new();
        for i in 0..total {
            let outcome = loop {
                if let Some(o) = buffer.remove(&i) {
                    break o;
                }
                match rx.recv() {
                    Ok((j, o)) => {
                        buffer.insert(j, o);
                    }
                    Err(_) => {
                        return Err(format!(
                            "worker pool hung up with cell {i} of {total} undelivered"
                        ))
                    }
                }
            };
            // Release the window before committing so workers overlap
            // with journal IO.
            gate.advance(i + 1);
            match outcome {
                Ok(work) => commit(i, work)?,
                // A genuine bug: re-raise at the canonical commit
                // boundary, exactly where the serial run would die,
                // with the same journal prefix already durable.
                Err(payload) => resume_unwind(payload),
            }
        }
        Ok(stats.snapshot())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultProfile;
    use crate::harness::{CellId, SweepConfig};
    use crate::paper::TargetSystem;
    use crate::prompt::PromptStyle;
    use std::sync::atomic::AtomicUsize;

    fn cells(n: u64, profile: FaultProfile) -> Vec<CellId> {
        (0..n)
            .map(|seed| CellId {
                system: TargetSystem::RockPaperScissors,
                style: PromptStyle::ModularText,
                seed,
                profile,
                scale: crate::harness::TopoScale::Paper,
            })
            .collect()
    }

    #[test]
    fn commits_in_slice_order_for_every_worker_count() {
        let cs = cells(23, FaultProfile::None);
        for workers in [1, 2, 4, 8] {
            let mut seen = Vec::new();
            let stats = run_ordered(
                workers,
                &cs,
                |cell| cell.seed * 10,
                |i, w| {
                    seen.push((i, w));
                    Ok(())
                },
            )
            .expect("pool runs");
            let want: Vec<(usize, u64)> = (0..23).map(|i| (i, i as u64 * 10)).collect();
            assert_eq!(seen, want, "workers={workers}");
            assert_eq!(stats.executed, 23);
        }
    }

    #[test]
    fn chaos_profile_injects_and_absorbs_worker_faults() {
        // Under chaos, worker crashes fire with p≈0.24 over 64 cells —
        // the deterministic per-cell streams make the count exact.
        let cs = cells(64, FaultProfile::Chaos);
        let run = |workers| {
            let mut order = Vec::new();
            let stats = run_ordered(workers, &cs, |c| c.seed, |_, w| {
                order.push(w);
                Ok(())
            })
            .expect("pool runs");
            (order, stats)
        };
        let (order_a, stats_a) = run(3);
        let (order_b, stats_b) = run(7);
        assert_eq!(order_a, (0..64).collect::<Vec<_>>());
        assert_eq!(order_a, order_b, "commit order is worker-count independent");
        assert!(stats_a.crashes_absorbed > 0, "{stats_a:?}");
        assert!(stats_a.stalls_absorbed > 0, "{stats_a:?}");
        // Fault rolls derive from per-cell seeds, so the absorbed
        // counts are identical whatever the pool shape.
        assert_eq!(stats_a, stats_b);
        assert_eq!(stats_a.executed, 64, "every cell completes exactly once");
    }

    #[test]
    fn none_profile_never_touches_worker_faults() {
        let cs = cells(16, FaultProfile::None);
        let stats = run_ordered(4, &cs, |c| c.seed, |_, _| Ok(())).expect("pool runs");
        assert_eq!(stats.crashes_absorbed, 0);
        assert_eq!(stats.stalls_absorbed, 0);
        assert_eq!(stats.executed, 16);
    }

    #[test]
    fn commit_error_stops_the_pool() {
        let cs = cells(40, FaultProfile::None);
        let mut committed = 0u32;
        let err = run_ordered(
            4,
            &cs,
            |c| c.seed,
            |i, _| {
                if i == 5 {
                    return Err("sink full".to_string());
                }
                committed += 1;
                Ok(())
            },
        )
        .expect_err("commit failure must surface");
        assert_eq!(err, "sink full");
        assert_eq!(committed, 5);
    }

    #[test]
    fn real_panics_reraise_at_the_commit_slot() {
        let cs = cells(12, FaultProfile::None);
        let committed = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_ordered(
                4,
                &cs,
                |c| {
                    if c.seed == 7 {
                        std::panic::panic_any("pool bug".to_string());
                    }
                    c.seed
                },
                |_, _| {
                    committed.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                },
            )
        }));
        let payload = caught.expect_err("the bug must escape the pool");
        assert_eq!(payload.downcast_ref::<String>().map(String::as_str), Some("pool bug"));
        // Every cell before the panicking one commits; nothing after.
        assert_eq!(committed.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn speculation_window_bounds_the_reorder_buffer() {
        // With a deliberately slow commit the claim cursor must never
        // run more than window cells past the frontier.
        let cs = cells(64, FaultProfile::None);
        let max_lead = AtomicUsize::new(0);
        let committed = AtomicUsize::new(0);
        let workers = 2;
        run_ordered(
            workers,
            &cs,
            |c| {
                let lead = c.seed as usize - committed.load(Ordering::Relaxed).min(c.seed as usize);
                max_lead.fetch_max(lead, Ordering::Relaxed);
                c.seed
            },
            |i, _| {
                committed.store(i + 1, Ordering::Relaxed);
                std::thread::yield_now();
                Ok(())
            },
        )
        .expect("pool runs");
        // A claimed cell can be at most window ahead when it starts.
        assert!(
            max_lead.load(Ordering::Relaxed) <= workers * SPECULATION_PER_WORKER,
            "lead {} exceeded the speculation window",
            max_lead.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn generic_items_commit_in_slice_order_without_fault_injection() {
        // Items are plain strings — no CellId, so no worker faults can
        // fire; commit order must still be slice order at any width.
        let items: Vec<String> = (0..17).map(|i| format!("chunk-{i}")).collect();
        for workers in [1, 3, 8] {
            let mut seen = Vec::new();
            let stats = run_ordered_items(
                workers,
                &items,
                |i, s: &String| format!("{s}/{i}"),
                |i, w| {
                    seen.push((i, w));
                    Ok(())
                },
            )
            .expect("pool runs");
            let want: Vec<(usize, String)> =
                (0..17).map(|i| (i, format!("chunk-{i}/{i}"))).collect();
            assert_eq!(seen, want, "workers={workers}");
            assert_eq!(stats.executed, 17);
            assert_eq!(stats.crashes_absorbed, 0);
            assert_eq!(stats.stalls_absorbed, 0);
        }
    }

    #[test]
    fn worker_fault_seed_is_stable() {
        // The worker stream must not collide with the session/fault/
        // harness streams of the same cell (distinct salts).
        let cfg = SweepConfig::default();
        let cell = cfg.expand()[0];
        let w = derive_seed(cell, 0, SALT_WORKER);
        for salt in [0x5e55_1011_0000_0001u64, 0xfa17_0a75_0000_0002, 0x4a52_4e53_0000_0003] {
            assert_ne!(w, derive_seed(cell, 0, salt));
        }
    }
}
