//! The serve daemon's determinism contract, exercised at the
//! scheduler layer (no sockets): a job's journal and report are
//! byte-identical to running the same spec through the harness
//! directly, regardless of arrival order, tenant mix, worker count,
//! memoization, or a mid-job crash — and every admission refusal is
//! typed, immediate, and recoverable.

use netrepro_core::cache::CellMemo;
use netrepro_core::harness::{parse_journal, MemoryJournal, Sweep, SweepConfig};
use netrepro_rps::{JobState, RejectReason};
use netrepro_serve::ledger::{LedgerHeader, LedgerLine};
use netrepro_serve::sched::{Admission, RuntimeFactory, SchedConfig, Scheduler};
use netrepro_serve::spec::JobSpec;
use netrepro_serve::storage::{JobStorage, MemStorage};
use proptest::prelude::*;
use std::sync::Arc;

/// A cheap, fast job (1 cell) and a slightly larger one (4 cells).
const SMALL: &str = "systems=rps;styles=mono;profiles=none;seeds=1";
const MEDIUM: &str = "systems=rps+ap;styles=mono;profiles=none;seeds=2";

/// Marker deadline the poison factory recognises.
const POISON_DEADLINE: u64 = 424_242;
const POISON_SPEC: &str = "systems=rps;styles=mono;profiles=none;seeds=1;deadline=424242";

fn plain_factory() -> RuntimeFactory {
    Arc::new(|cfg: &SweepConfig| Sweep::new(cfg.clone()))
}

fn memo_factory(memo: Arc<CellMemo>) -> RuntimeFactory {
    Arc::new(move |cfg: &SweepConfig| Sweep::new(cfg.clone()).with_cache(Arc::clone(&memo)))
}

/// Panics (inside the gate) for any spec carrying the poison marker —
/// the scheduler worker must absorb the panic and fail only that job.
fn poison_factory() -> RuntimeFactory {
    Arc::new(|cfg: &SweepConfig| {
        let sweep = Sweep::new(cfg.clone());
        if cfg.limits.deadline_steps == POISON_DEADLINE {
            sweep.with_gate(Box::new(|_, _| panic!("poison job")))
        } else {
            sweep
        }
    })
}

/// The one-shot baseline: journal text and report JSON for `spec`.
fn direct(spec: &str) -> (String, String) {
    let job = JobSpec::parse(spec).expect("spec");
    let sweep = Sweep::new(job.config.clone());
    let replay = parse_journal("", &job.config).expect("empty replay");
    let mut sink = MemoryJournal::new();
    let step = sweep.run_slice(&replay, &mut sink, u64::MAX).expect("run");
    let report = step.report.expect("complete run yields a report");
    (sink.text().to_string(), report.render_json())
}

/// Start workers, wait for every live job to reach a terminal state,
/// then stop the workers.
fn run_to_idle(sched: &Arc<Scheduler>) {
    let handles = sched.start_workers();
    sched.wait_idle();
    sched.shutdown();
    for h in handles {
        h.join().expect("worker");
    }
}

fn submit_ok(sched: &Scheduler, tenant: &str, nonce: u64, spec: &str) -> u64 {
    match sched.submit(tenant, nonce, spec).expect("submit") {
        Admission::Accepted(id) => id,
        other => panic!("expected acceptance, got {other:?}"),
    }
}

#[test]
fn scheduler_runs_a_job_byte_identically() {
    let storage = MemStorage::new();
    let sched = Arc::new(
        Scheduler::recover(SchedConfig::default(), plain_factory(), Arc::new(storage.clone()))
            .expect("recover"),
    );
    let id = submit_ok(&sched, "alice", 1, MEDIUM);
    run_to_idle(&sched);
    let (state, journaled, total) = sched.status(id).expect("status");
    assert_eq!(state, JobState::Done);
    assert_eq!(journaled, total);
    let (journal, report) = direct(MEDIUM);
    assert_eq!(storage.journal_text(id), journal, "journal bytes differ from one-shot run");
    assert_eq!(sched.results(id).expect("results"), Some(report));
}

#[test]
fn results_survive_a_restart_without_re_execution() {
    let storage = MemStorage::new();
    let factory = plain_factory();
    let sched = Arc::new(
        Scheduler::recover(SchedConfig::default(), Arc::clone(&factory), Arc::new(storage.clone()))
            .expect("recover"),
    );
    let id = submit_ok(&sched, "alice", 1, SMALL);
    run_to_idle(&sched);
    let journal_before = storage.journal_text(id);
    // Restart: the in-memory report is gone; RESULTS reconstructs it
    // from the journal without executing a cell (the journal must not
    // change).
    let revived = Scheduler::recover(SchedConfig::default(), factory, Arc::new(storage.clone()))
        .expect("recover again");
    assert_eq!(revived.status(id).expect("status").0, JobState::Done);
    let (_, report) = direct(SMALL);
    assert_eq!(revived.results(id).expect("results"), Some(report));
    assert_eq!(storage.journal_text(id), journal_before, "reconstruction must not append");
}

#[test]
fn admission_refusals_are_typed_and_immediate() {
    let cfg = SchedConfig {
        workers: 1,
        queue_cap: 2,
        tenant_quota: 1,
        breaker_threshold: 3,
        quantum: 8,
    };
    let storage = MemStorage::new();
    let sched =
        Scheduler::recover(cfg, plain_factory(), Arc::new(storage.clone())).expect("recover");
    // Workers never started: everything stays queued (live).
    let a = sched.submit("alice", 1, SMALL).expect("submit");
    let Admission::Accepted(a_id) = a else { panic!("{a:?}") };
    assert_eq!(
        sched.submit("alice", 2, SMALL).expect("submit"),
        Admission::Rejected(RejectReason::TenantOverQuota),
    );
    // A duplicate (tenant, nonce) replays the original id, not a slot.
    assert_eq!(sched.submit("alice", 1, SMALL).expect("submit"), Admission::Accepted(a_id));
    assert!(matches!(sched.submit("bob", 1, SMALL).expect("submit"), Admission::Accepted(_)));
    assert_eq!(
        sched.submit("carol", 1, SMALL).expect("submit"),
        Admission::Rejected(RejectReason::QueueFull),
    );
    let huge = format!("systems={}", "rps+".repeat(600));
    assert_eq!(
        sched.submit("carol", 2, &huge).expect("submit"),
        Admission::Rejected(RejectReason::PayloadTooLarge),
    );
    assert!(matches!(
        sched.submit("carol", 3, "colour=blue").expect("submit"),
        Admission::Malformed(_)
    ));
    // Cancelling a queued job frees its slot immediately.
    assert_eq!(sched.cancel(a_id).expect("cancel"), Some(JobState::Cancelled));
    assert_eq!(sched.status(a_id).expect("status").0, JobState::Cancelled);
    assert!(matches!(sched.submit("carol", 4, SMALL).expect("submit"), Admission::Accepted(_)));
    // Draining admits nothing.
    assert!(sched.drain() > 0);
    assert_eq!(sched.submit("dave", 1, SMALL).expect("submit"), Admission::Draining);
}

#[test]
fn poison_jobs_fail_alone_and_open_the_breaker() {
    let cfg = SchedConfig { breaker_threshold: 2, tenant_quota: 8, ..SchedConfig::default() };
    let storage = MemStorage::new();
    let factory = poison_factory();
    let sched = Arc::new(
        Scheduler::recover(cfg.clone(), Arc::clone(&factory), Arc::new(storage.clone()))
            .expect("recover"),
    );
    let p1 = submit_ok(&sched, "mallory", 1, POISON_SPEC);
    let p2 = submit_ok(&sched, "mallory", 2, POISON_SPEC);
    let ok = submit_ok(&sched, "alice", 1, SMALL);
    run_to_idle(&sched);
    // The panics were absorbed: the poison jobs failed, the healthy
    // tenant's job finished, and the workers are still alive.
    assert_eq!(sched.status(p1).expect("status").0, JobState::Failed);
    assert_eq!(sched.status(p2).expect("status").0, JobState::Failed);
    assert_eq!(sched.status(ok).expect("status").0, JobState::Done);
    // Two consecutive failures opened mallory's breaker…
    assert_eq!(
        sched.submit("mallory", 3, SMALL).expect("submit"),
        Admission::Rejected(RejectReason::TenantBreakerOpen),
    );
    // …which persists across a restart (rebuilt from the ledger)…
    let revived =
        Scheduler::recover(cfg, factory, Arc::new(storage.clone())).expect("recover again");
    assert_eq!(
        revived.submit("mallory", 3, SMALL).expect("submit"),
        Admission::Rejected(RejectReason::TenantBreakerOpen),
    );
    // …and never touches other tenants.
    assert!(matches!(revived.submit("alice", 9, SMALL).expect("submit"), Admission::Accepted(_)));
}

#[test]
fn virtual_clock_deadline_leaves_a_byte_identical_prefix() {
    // clock=1 expires after the first slice of a 4-cell job; quantum=1
    // makes slices single-cell so the deadline lands mid-matrix.
    let spec = format!("{MEDIUM};clock=1");
    let cfg = SchedConfig { workers: 1, quantum: 1, ..SchedConfig::default() };
    let storage = MemStorage::new();
    let sched = Arc::new(
        Scheduler::recover(cfg, plain_factory(), Arc::new(storage.clone())).expect("recover"),
    );
    let id = submit_ok(&sched, "alice", 1, &spec);
    run_to_idle(&sched);
    let (state, journaled, total) = sched.status(id).expect("status");
    assert_eq!(state, JobState::Deadline);
    assert!(journaled < total, "the deadline must strike before the matrix completes");
    let (full, _) = direct(MEDIUM);
    let got = storage.journal_text(id);
    assert!(!got.is_empty());
    assert!(
        full.starts_with(&got),
        "a deadline'd journal must be a byte-identical prefix of the uninterrupted run"
    );
}

/// Deterministic Fisher–Yates (SplitMix64) so proptest seeds pick the
/// arrival order reproducibly.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    let mut next = move || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arrival order, tenant mix, worker count and memoization never
    /// change a single journal byte.
    #[test]
    fn journals_are_arrival_order_and_memo_invariant(
        seed in 0u64..1000,
        workers in 1usize..4,
        memo_on in any::<bool>(),
    ) {
        let specs = [
            ("alice", 1u64, SMALL),
            ("alice", 2, MEDIUM),
            ("bob", 1, "systems=ap;styles=mono;profiles=none;seeds=2"),
            ("carol", 1, "systems=rps;styles=mono;profiles=light;seeds=2"),
        ];
        let mut order: Vec<usize> = (0..specs.len()).collect();
        shuffle(&mut order, seed);
        let factory = if memo_on {
            memo_factory(CellMemo::shared())
        } else {
            plain_factory()
        };
        let cfg = SchedConfig { workers, quantum: 2, ..SchedConfig::default() };
        let storage = MemStorage::new();
        let sched = Arc::new(
            Scheduler::recover(cfg, factory, Arc::new(storage.clone())).expect("recover"),
        );
        let mut ids = vec![0u64; specs.len()];
        for &i in &order {
            let (tenant, nonce, spec) = specs[i];
            ids[i] = submit_ok(&sched, tenant, nonce, spec);
        }
        run_to_idle(&sched);
        for (i, &(_, _, spec)) in specs.iter().enumerate() {
            let (journal, report) = direct(spec);
            prop_assert_eq!(sched.status(ids[i]).expect("status").0, JobState::Done);
            prop_assert_eq!(
                storage.journal_text(ids[i]),
                journal,
                "job {} journal differs (order {:?}, workers {}, memo {})",
                i, order, workers, memo_on
            );
            prop_assert_eq!(sched.results(ids[i]).expect("results"), Some(report));
        }
    }

    /// SIGKILL anywhere: cut every job's journal at an arbitrary byte
    /// (the write the crash tore), recover, and the finished journals
    /// are byte-identical to uninterrupted runs. The ledger's own torn
    /// tail (an unacked admission) is dropped, not resurrected.
    #[test]
    fn crash_at_any_byte_resumes_byte_identically(
        cut_a in 0usize..2048,
        cut_b in 0usize..2048,
    ) {
        let jobs = [("alice", 1u64, MEDIUM), ("bob", 1, SMALL)];
        let (full_a, report_a) = direct(MEDIUM);
        let (full_b, report_b) = direct(SMALL);

        // Reconstruct the causal pre-crash state by hand: both jobs
        // were acked (their Submitted lines are durable), each journal
        // holds an arbitrary prefix of its final bytes, and the crash
        // tore a third, never-acked admission off the ledger tail.
        let storage = MemStorage::new();
        let mut ledger = LedgerHeader::line().expect("header");
        for (i, &(tenant, nonce, spec)) in jobs.iter().enumerate() {
            ledger.push_str(
                &LedgerLine::Submitted {
                    job: i as u64 + 1,
                    tenant: tenant.to_string(),
                    nonce,
                    spec: spec.to_string(),
                }
                .line()
                .expect("line"),
            );
        }
        ledger.push_str("{\"Submitted\":{\"job\":3,\"tena"); // torn mid-write
        storage.ledger_append(&ledger).expect("seed ledger");
        let cut_a = cut_a.min(full_a.len());
        let cut_b = cut_b.min(full_b.len());
        storage.journal_sink(1).expect("sink").append(&full_a[..cut_a]).expect("seed");
        storage.journal_sink(2).expect("sink").append(&full_b[..cut_b]).expect("seed");

        let sched = Arc::new(
            Scheduler::recover(SchedConfig::default(), plain_factory(), Arc::new(storage.clone()))
                .expect("recover"),
        );
        prop_assert!(sched.status(3).is_none(), "the unacked admission must not resurrect");
        run_to_idle(&sched);
        prop_assert_eq!(sched.status(1).expect("status").0, JobState::Done);
        prop_assert_eq!(sched.status(2).expect("status").0, JobState::Done);
        prop_assert_eq!(storage.journal_text(1), full_a, "job 1 cut at {}", cut_a);
        prop_assert_eq!(storage.journal_text(2), full_b, "job 2 cut at {}", cut_b);
        prop_assert_eq!(sched.results(1).expect("results"), Some(report_a));
        prop_assert_eq!(sched.results(2).expect("results"), Some(report_b));
    }
}

#[test]
fn a_warm_memo_is_invisible_in_the_bytes() {
    // Two identical jobs back to back over one shared memo: the second
    // run is served from cache yet must write the same bytes.
    let storage = MemStorage::new();
    let sched = Arc::new(
        Scheduler::recover(
            SchedConfig::default(),
            memo_factory(CellMemo::shared()),
            Arc::new(storage.clone()),
        )
        .expect("recover"),
    );
    let first = submit_ok(&sched, "alice", 1, MEDIUM);
    let second = submit_ok(&sched, "bob", 1, MEDIUM);
    run_to_idle(&sched);
    let (journal, _) = direct(MEDIUM);
    assert_eq!(storage.journal_text(first), journal);
    assert_eq!(storage.journal_text(second), journal);
}
