//! The job spec: a sweep matrix encoded as one whitespace-free wire
//! token.
//!
//! A `SUBMIT` frame carries the entire job description as a single
//! token (`systems=ncflow+arrow;styles=text;profiles=none;seeds=2`),
//! which this module parses into the *same* [`SweepConfig`] the
//! one-shot CLI builds from the equivalent flags. That shared
//! construction is the root of the determinism contract: identical
//! config → identical fingerprint → identical journal bytes, whether
//! the matrix runs via `netrepro sweep` or through the daemon.

use netrepro_core::fault::FaultProfile;
use netrepro_core::harness::{SweepConfig, TaskLimits, TopoScale};
use netrepro_core::paper::TargetSystem;
use netrepro_core::prompt::PromptStyle;

/// Hard cap on an accepted spec token, below the job-frame cap so an
/// over-long spec is rejected as `payload-too-large` at admission
/// rather than tearing the frame.
pub const MAX_SPEC_LEN: usize = 1024;

/// A spec that failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad job spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// The lowercase wire token for a system (the CLI flag vocabulary).
fn system_token(s: TargetSystem) -> &'static str {
    match s {
        TargetSystem::NcFlow => "ncflow",
        TargetSystem::Arrow => "arrow",
        TargetSystem::ApKeep => "apkeep",
        TargetSystem::ApVerifier => "ap",
        TargetSystem::RockPaperScissors => "rps",
    }
}

/// A parsed job spec — a thin, canonically-encodable wrapper around
/// the harness's [`SweepConfig`] plus serve-only scheduling fields.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The sweep configuration this job runs.
    pub config: SweepConfig,
    /// Virtual-clock budget for the whole job (`clock=N`; 0 = none).
    /// Checked between scheduler slices against the job's journaled
    /// clock — never wall time — so a deadline'd job's journal prefix
    /// is still byte-identical to the uninterrupted run's prefix.
    pub clock_limit: u64,
}

impl JobSpec {
    /// Parse a spec token. Unknown keys, empty lists, repeated keys
    /// and malformed numbers are all errors; omitted keys take the
    /// same defaults as the CLI flags (`systems=ncflow+arrow+apkeep+ap`,
    /// `styles=text+pseudo`, `profiles=none+heavy`, `seeds=3`, limits
    /// from [`TaskLimits::default`]).
    pub fn parse(token: &str) -> Result<JobSpec, SpecError> {
        if token.len() > MAX_SPEC_LEN {
            return Err(SpecError(format!(
                "spec is {} bytes; the cap is {MAX_SPEC_LEN}",
                token.len()
            )));
        }
        let mut systems: Option<Vec<TargetSystem>> = None;
        let mut styles: Option<Vec<PromptStyle>> = None;
        let mut profiles: Option<Vec<FaultProfile>> = None;
        let mut scales: Option<Vec<TopoScale>> = None;
        let mut seeds: Option<u64> = None;
        let mut limits = TaskLimits::default();
        let mut clock_limit = 0u64;
        let mut seen: Vec<&str> = Vec::new();
        for field in token.split(';').filter(|f| !f.is_empty()) {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| SpecError(format!("field {field:?} is not key=value")))?;
            if seen.contains(&key) {
                return Err(SpecError(format!("repeated key {key:?}")));
            }
            seen.push(key);
            match key {
                "systems" => systems = Some(parse_list(value, TargetSystem::parse, key)?),
                "styles" => styles = Some(parse_list(value, PromptStyle::parse, key)?),
                "profiles" => profiles = Some(parse_list(value, FaultProfile::parse, key)?),
                "scales" => scales = Some(parse_list(value, TopoScale::parse, key)?),
                "seeds" => {
                    let n: u64 = parse_num(value, key)?;
                    if n == 0 {
                        return Err(SpecError("seeds must be at least 1".into()));
                    }
                    seeds = Some(n);
                }
                "deadline" => limits.deadline_steps = parse_num(value, key)?,
                "attempts" => limits.max_attempts = parse_num(value, key)?,
                "breaker" => limits.breaker_threshold = parse_num(value, key)?,
                "clock" => clock_limit = parse_num(value, key)?,
                _ => return Err(SpecError(format!("unknown key {key:?}"))),
            }
        }
        let config = SweepConfig {
            systems: systems.unwrap_or_else(|| {
                vec![
                    TargetSystem::NcFlow,
                    TargetSystem::Arrow,
                    TargetSystem::ApKeep,
                    TargetSystem::ApVerifier,
                ]
            }),
            styles: styles
                .unwrap_or_else(|| vec![PromptStyle::ModularText, PromptStyle::ModularPseudocode]),
            profiles: profiles.unwrap_or_else(|| vec![FaultProfile::None, FaultProfile::Heavy]),
            scales: scales.unwrap_or_else(|| vec![TopoScale::Paper]),
            seeds: (0..seeds.unwrap_or(3)).collect(),
            limits,
        };
        Ok(JobSpec { config, clock_limit })
    }

    /// Canonical wire token: every field explicit, fixed order. Two
    /// specs that parse to the same config encode identically.
    pub fn wire(&self) -> String {
        let systems: Vec<&str> = self.config.systems.iter().map(|&s| system_token(s)).collect();
        let styles: Vec<&str> = self.config.styles.iter().map(|s| s.name()).collect();
        let profiles: Vec<&str> = self.config.profiles.iter().map(|p| p.name()).collect();
        let scales: Vec<String> = self.config.scales.iter().map(|s| s.name()).collect();
        format!(
            "systems={};styles={};profiles={};scales={};seeds={};deadline={};attempts={};breaker={};clock={}",
            systems.join("+"),
            styles.join("+"),
            profiles.join("+"),
            scales.join("+"),
            self.config.seeds.len(),
            self.config.limits.deadline_steps,
            self.config.limits.max_attempts,
            self.config.limits.breaker_threshold,
            self.clock_limit,
        )
    }
}

fn parse_list<T>(
    value: &str,
    parse: impl Fn(&str) -> Option<T>,
    key: &str,
) -> Result<Vec<T>, SpecError> {
    let items: Vec<T> = value
        .split('+')
        .filter(|v| !v.is_empty())
        .map(|v| parse(v).ok_or_else(|| SpecError(format!("bad {key} entry {v:?}"))))
        .collect::<Result<_, _>>()?;
    if items.is_empty() {
        return Err(SpecError(format!("{key} list is empty")));
    }
    Ok(items)
}

fn parse_num<T: std::str::FromStr>(value: &str, key: &str) -> Result<T, SpecError> {
    value.parse().map_err(|_| SpecError(format!("bad {key} value {value:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_canonically() {
        let spec = JobSpec::parse("systems=rps+ap;styles=mono;profiles=light;seeds=2").unwrap();
        let wire = spec.wire();
        assert!(!wire.contains(char::is_whitespace));
        let again = JobSpec::parse(&wire).unwrap();
        assert_eq!(spec, again);
        assert_eq!(again.wire(), wire);
    }

    #[test]
    fn defaults_match_the_cli_flag_defaults() {
        let spec = JobSpec::parse("").unwrap();
        assert_eq!(
            spec.config.systems,
            vec![
                TargetSystem::NcFlow,
                TargetSystem::Arrow,
                TargetSystem::ApKeep,
                TargetSystem::ApVerifier
            ]
        );
        assert_eq!(
            spec.config.styles,
            vec![PromptStyle::ModularText, PromptStyle::ModularPseudocode]
        );
        assert_eq!(spec.config.profiles, vec![FaultProfile::None, FaultProfile::Heavy]);
        assert_eq!(spec.config.scales, vec![TopoScale::Paper]);
        assert_eq!(spec.config.seeds, vec![0, 1, 2]);
        assert_eq!(spec.config.limits, TaskLimits::default());
    }

    #[test]
    fn limits_are_settable() {
        let spec = JobSpec::parse("seeds=1;deadline=100;attempts=2;breaker=5").unwrap();
        assert_eq!(spec.config.limits.deadline_steps, 100);
        assert_eq!(spec.config.limits.max_attempts, 2);
        assert_eq!(spec.config.limits.breaker_threshold, 5);
        let defaults = TaskLimits::default();
        assert_eq!(spec.config.limits.backoff_base, defaults.backoff_base);
        assert_eq!(spec.config.limits.backoff_cap, defaults.backoff_cap);
    }

    #[test]
    fn identical_specs_share_a_fingerprint() {
        let a = JobSpec::parse("systems=rps;styles=mono;profiles=none;seeds=2").unwrap();
        let b = JobSpec::parse(&a.wire()).unwrap();
        assert_eq!(a.config.fingerprint(), b.config.fingerprint());
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        for bad in [
            "systems=warp",
            "styles=",
            "seeds=0",
            "seeds=abc",
            "systems=rps;systems=ap",
            "scales=ft3",
            "scales=ft12",
            "scales=",
            "colour=blue",
            "noequals",
        ] {
            assert!(JobSpec::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn oversized_specs_are_rejected() {
        let huge = format!("systems={}", "ncflow+".repeat(400));
        assert!(huge.len() > MAX_SPEC_LEN);
        assert!(JobSpec::parse(&huge).is_err());
    }
}
