//! The TCP face of the daemon: accept loop, per-connection handler,
//! and the [`JobClient`] the CLI and tests use to speak the job
//! protocol.
//!
//! All socket I/O lives here, behind the same transport discipline the
//! `rps` crate established: hard frame caps ([`MAX_JOB_FRAME`]), a
//! per-connection read deadline (the slow-loris absorber), and typed
//! errors. A connection that trickles, tears a frame, or disconnects
//! mid-request takes down only itself — job state lives in the
//! [`Scheduler`] and its write-ahead ledger, never in a connection.

use crate::sched::{Admission, Scheduler};
use netrepro_rps::{read_job_frame, JobRequest, JobResponse, ProtocolError};
use std::io::{BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// Default per-connection read deadline. A client that cannot finish a
/// frame within this window is reaped (slow-loris absorption); the cap
/// also bounds how long a drain can wait on an idle connection.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// The daemon's listening face.
pub struct Daemon {
    listener: TcpListener,
    sched: Arc<Scheduler>,
    read_timeout: Duration,
}

impl Daemon {
    /// Bind to `addr` and serve `sched`.
    // effect-allow(Io): binding the listening socket is the daemon
    // boundary's explicit job.
    pub fn bind(addr: impl ToSocketAddrs, sched: Arc<Scheduler>) -> Result<Daemon, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind: {e}"))?;
        Ok(Daemon { listener, sched, read_timeout: DEFAULT_READ_TIMEOUT })
    }

    /// Override the per-connection read deadline (tests use a short
    /// one to exercise slow-loris reaping quickly).
    pub fn with_read_timeout(mut self, timeout: Duration) -> Daemon {
        self.read_timeout = timeout;
        self
    }

    /// The bound address.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, String> {
        self.listener.local_addr().map_err(|e| format!("local_addr: {e}"))
    }

    /// Serve forever. Each accepted connection gets its own detached
    /// handler thread; a connection failure never stops the accept
    /// loop. Only process death (SIGKILL, or SIGTERM — the binary
    /// forbids unsafe code, so there is no signal handler) ends this;
    /// the write-ahead ledger makes that safe.
    // effect-allow(Io): the accept loop at the daemon boundary.
    pub fn serve_forever(&self) -> Result<(), String> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let sched = Arc::clone(&self.sched);
                    let timeout = self.read_timeout;
                    std::thread::spawn(move || handle_connection(&sched, stream, timeout));
                }
                Err(e) => return Err(format!("accept: {e}")),
            }
        }
    }

    /// Serve exactly `n` connections, each on its own scoped thread
    /// (so a wedged connection cannot starve the others). Test entry
    /// point.
    // effect-allow(Io): the bounded accept loop at the daemon boundary.
    pub fn serve_connections(&self, n: usize) -> Result<(), String> {
        std::thread::scope(|scope| {
            for _ in 0..n {
                let (stream, _) = self.listener.accept().map_err(|e| format!("accept: {e}"))?;
                let sched = Arc::clone(&self.sched);
                let timeout = self.read_timeout;
                scope.spawn(move || handle_connection(&sched, stream, timeout));
            }
            Ok(())
        })
    }
}

/// Drive one connection until EOF, a read deadline, or a transport
/// error. Every exit path is absorption: the connection dies, the
/// daemon does not.
// effect-allow(Io): per-connection socket reads/writes at the daemon
// boundary.
fn handle_connection(sched: &Scheduler, stream: TcpStream, timeout: Duration) {
    if stream.set_read_timeout(Some(timeout)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_job_frame(&mut reader) {
            Ok(Some(line)) => line,
            // Clean EOF, torn frame, oversize frame, or the read
            // deadline: drop the connection, keep the daemon.
            Ok(None) | Err(_) => return,
        };
        let Some(request) = JobRequest::parse(&line) else {
            if write_response(&mut writer, &JobResponse::Err("malformed request".into())).is_err() {
                return;
            }
            continue;
        };
        let (response, payload) = dispatch(sched, &request);
        if write_response(&mut writer, &response).is_err() {
            return;
        }
        if let Some(bytes) = payload {
            if writer.write_all(bytes.as_bytes()).and_then(|_| writer.flush()).is_err() {
                return;
            }
        }
    }
}

// effect-allow(Io): response write at the daemon boundary.
fn write_response(writer: &mut TcpStream, response: &JobResponse) -> std::io::Result<()> {
    writer.write_all(response.wire().as_bytes())?;
    writer.flush()
}

/// Map one request to its reply (plus, for `RESULTS`, the raw payload
/// that follows the header line).
fn dispatch(sched: &Scheduler, request: &JobRequest) -> (JobResponse, Option<String>) {
    match request {
        JobRequest::Submit { tenant, nonce, spec } => {
            let response = match sched.submit(tenant, *nonce, spec) {
                Ok(Admission::Accepted(id)) => JobResponse::Accepted(id),
                Ok(Admission::Rejected(reason)) => JobResponse::Rejected(reason),
                Ok(Admission::Malformed(e)) => JobResponse::Err(e),
                Ok(Admission::Draining) => JobResponse::Err("draining".into()),
                Err(e) => JobResponse::Err(e),
            };
            (response, None)
        }
        JobRequest::Status(id) => (status_response(sched, *id), None),
        JobRequest::Cancel(id) => {
            let response = match sched.cancel(*id) {
                Ok(Some(_)) => status_response(sched, *id),
                Ok(None) => JobResponse::Err(format!("no such job {id}")),
                Err(e) => JobResponse::Err(e),
            };
            (response, None)
        }
        JobRequest::Results(id) => match sched.results(*id) {
            Ok(Some(json)) => (
                JobResponse::ResultsHeader { id: *id, len: json.len() as u64 },
                Some(json),
            ),
            // The job exists but is not done yet: report where it is.
            Ok(None) => (status_response(sched, *id), None),
            Err(e) => (JobResponse::Err(e), None),
        },
        JobRequest::Health => {
            let (queued, running, done) = sched.health();
            (JobResponse::Health { queued, running, done }, None)
        }
        JobRequest::Drain => (JobResponse::Draining(sched.drain()), None),
    }
}

fn status_response(sched: &Scheduler, id: u64) -> JobResponse {
    match sched.status(id) {
        Some((state, journaled, total)) => JobResponse::State { id, state, journaled, total },
        None => JobResponse::Err(format!("no such job {id}")),
    }
}

// ------------------------------------------------------------- client

/// A blocking client for the job protocol: one connection, one
/// request/response exchange per call.
pub struct JobClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl JobClient {
    /// Connect to a daemon.
    // effect-allow(Io): the client's connecting socket.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<JobClient, ProtocolError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(DEFAULT_READ_TIMEOUT))?;
        let writer = stream.try_clone()?;
        Ok(JobClient { writer, reader: BufReader::new(stream) })
    }

    /// Send one request, read one response line.
    // effect-allow(Io): the client's request/response exchange.
    pub fn request(&mut self, request: &JobRequest) -> Result<JobResponse, ProtocolError> {
        let wire = request
            .wire()
            .ok_or_else(|| ProtocolError::Malformed("request not wire-encodable".into()))?;
        self.writer.write_all(wire.as_bytes())?;
        self.writer.flush()?;
        let line = read_job_frame(&mut self.reader)?
            .ok_or_else(|| ProtocolError::Malformed("connection closed".into()))?;
        JobResponse::parse(&line)
            .ok_or_else(|| ProtocolError::Malformed(format!("bad response {line:?}")))
    }

    /// Submit a job.
    pub fn submit(
        &mut self,
        tenant: &str,
        nonce: u64,
        spec: &str,
    ) -> Result<JobResponse, ProtocolError> {
        self.request(&JobRequest::Submit {
            tenant: tenant.to_string(),
            nonce,
            spec: spec.to_string(),
        })
    }

    /// Query a job's state.
    pub fn status(&mut self, id: u64) -> Result<JobResponse, ProtocolError> {
        self.request(&JobRequest::Status(id))
    }

    /// Cancel a job.
    pub fn cancel(&mut self, id: u64) -> Result<JobResponse, ProtocolError> {
        self.request(&JobRequest::Cancel(id))
    }

    /// Queue depths.
    pub fn health(&mut self) -> Result<JobResponse, ProtocolError> {
        self.request(&JobRequest::Health)
    }

    /// Start a graceful drain.
    pub fn drain(&mut self) -> Result<JobResponse, ProtocolError> {
        self.request(&JobRequest::Drain)
    }

    /// Fetch a finished job's report payload. `Ok(Err(response))`
    /// surfaces a non-payload reply (job not done, unknown id) without
    /// conflating it with transport failure.
    // effect-allow(Io): the client's length-prefixed payload read.
    pub fn results(&mut self, id: u64) -> Result<Result<String, JobResponse>, ProtocolError> {
        match self.request(&JobRequest::Results(id))? {
            JobResponse::ResultsHeader { len, .. } => {
                let mut buf = vec![0u8; len as usize];
                self.reader.read_exact(&mut buf)?;
                String::from_utf8(buf)
                    .map(Ok)
                    .map_err(|_| ProtocolError::Malformed("results payload not utf-8".into()))
            }
            other => Ok(Err(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::SchedConfig;
    use crate::storage::MemStorage;
    use netrepro_core::fault::{FaultInjector, FaultKind, FaultPlan, FaultProfile, FaultSite};
    use netrepro_core::harness::{parse_journal, MemoryJournal, Sweep, SweepConfig};
    use netrepro_rps::{JobState, RejectReason};
    use std::net::SocketAddr;

    const SMALL: &str = "systems=rps;styles=mono;profiles=none;seeds=1";
    const POISON_DEADLINE: u64 = 424_242;
    const POISON_SPEC: &str = "systems=rps;styles=mono;profiles=none;seeds=1;deadline=424242";

    /// Plain factory, except specs carrying the poison marker panic.
    fn factory() -> crate::sched::RuntimeFactory {
        Arc::new(|cfg: &SweepConfig| {
            let sweep = Sweep::new(cfg.clone());
            if cfg.limits.deadline_steps == POISON_DEADLINE {
                sweep.with_gate(Box::new(|_, _| panic!("poison job")))
            } else {
                sweep
            }
        })
    }

    /// Daemon over fresh MemStorage, serving forever on a leaked
    /// thread (no signals in a forbid(unsafe_code) build; the thread
    /// dies with the test process).
    fn start_daemon(cfg: SchedConfig, timeout: Duration) -> (SocketAddr, MemStorage, Arc<Scheduler>) {
        let storage = MemStorage::new();
        let sched = Arc::new(
            Scheduler::recover(cfg, factory(), Arc::new(storage.clone())).expect("recover"),
        );
        let _workers = sched.start_workers();
        let daemon =
            Daemon::bind("127.0.0.1:0", Arc::clone(&sched)).expect("bind").with_read_timeout(timeout);
        let addr = daemon.local_addr().expect("addr");
        std::thread::spawn(move || daemon.serve_forever());
        (addr, storage, sched)
    }

    fn wait_terminal(client: &mut JobClient, id: u64) -> JobState {
        for _ in 0..1000 {
            if let JobResponse::State { state, .. } = client.status(id).expect("status") {
                if !state.is_live() {
                    return state;
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("job {id} never reached a terminal state");
    }

    #[test]
    fn submit_status_results_round_trip_matches_one_shot_run() {
        let (addr, storage, _sched) =
            start_daemon(SchedConfig::default(), Duration::from_secs(5));
        let mut client = JobClient::connect(addr).expect("connect");
        let JobResponse::Accepted(id) = client.submit("alice", 1, SMALL).expect("submit") else {
            panic!("submit refused");
        };
        assert_eq!(wait_terminal(&mut client, id), JobState::Done);

        // One-shot baseline with the identical config.
        let config = crate::spec::JobSpec::parse(SMALL).expect("spec").config;
        let replay = parse_journal("", &config).expect("replay");
        let mut sink = MemoryJournal::new();
        let step = Sweep::new(config.clone())
            .run_slice(&replay, &mut sink, u64::MAX)
            .expect("direct run");
        assert_eq!(storage.journal_text(id), sink.text(), "daemon journal differs");
        let payload = client.results(id).expect("results").expect("payload");
        assert_eq!(payload, step.report.expect("report").render_json());
        // HEALTH sees the terminal job.
        let JobResponse::Health { done, .. } = client.health().expect("health") else {
            panic!("bad health reply");
        };
        assert!(done >= 1);
    }

    #[test]
    fn drain_refuses_new_work_and_finishes_in_flight() {
        let (addr, _storage, sched) = start_daemon(SchedConfig::default(), Duration::from_secs(5));
        let mut client = JobClient::connect(addr).expect("connect");
        let JobResponse::Accepted(id) = client.submit("alice", 1, SMALL).expect("submit") else {
            panic!("submit refused");
        };
        assert!(matches!(client.drain().expect("drain"), JobResponse::Draining(_)));
        assert!(matches!(
            client.submit("bob", 1, SMALL).expect("submit during drain"),
            JobResponse::Err(_)
        ));
        sched.wait_idle();
        assert_eq!(wait_terminal(&mut client, id), JobState::Done);
    }

    /// Every `FaultSite::Serve` kind, injected by a seeded chaos plan
    /// and absorbed: slow-loris and mid-frame disconnects are reaped
    /// by the read deadline, duplicate submits deduplicate by nonce,
    /// poison jobs fail alone. After the storm the daemon still
    /// answers, and its trace shows zero escapes.
    #[test]
    fn hostile_clients_are_absorbed() {
        let cfg = SchedConfig {
            queue_cap: 64,
            tenant_quota: 64,
            breaker_threshold: 1000,
            ..SchedConfig::default()
        };
        let (addr, _storage, _sched) = start_daemon(cfg, Duration::from_millis(150));
        let mut injector = FaultInjector::new(FaultPlan::new(FaultProfile::Chaos, 17));
        let kinds = [
            FaultKind::SlowLoris,
            FaultKind::MidFrameDisconnect,
            FaultKind::DuplicateSubmit,
            FaultKind::PoisonJob,
        ];
        let mut fired = [false; 4];
        let mut round = 0u64;
        while !fired.iter().all(|&f| f) {
            round += 1;
            assert!(round < 300, "chaos plan never rolled every serve fault kind");
            for (i, &kind) in kinds.iter().enumerate() {
                let Some(fault) = injector.roll(FaultSite::Serve, kind) else { continue };
                fired[i] = true;
                match kind {
                    FaultKind::SlowLoris => {
                        // Half a frame, then silence: the read deadline
                        // must reap the connection.
                        let mut s = TcpStream::connect(addr).expect("connect");
                        s.write_all(b"SUBM").expect("trickle");
                        let mut buf = [0u8; 8];
                        s.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
                        let reaped = match s.read(&mut buf) {
                            Ok(0) => true,         // daemon closed us
                            Ok(_) => false,        // daemon answered a torn frame?!
                            Err(_) => false,       // daemon kept us hanging
                        };
                        assert!(reaped, "slow-loris connection was not reaped");
                    }
                    FaultKind::MidFrameDisconnect => {
                        let mut s = TcpStream::connect(addr).expect("connect");
                        s.write_all(b"STATUS 1").expect("half frame");
                        drop(s); // vanish mid-frame
                    }
                    FaultKind::DuplicateSubmit => {
                        let mut c1 = JobClient::connect(addr).expect("connect");
                        let mut c2 = JobClient::connect(addr).expect("connect");
                        let first = c1.submit("dup", round, SMALL).expect("submit");
                        let second = c2.submit("dup", round, SMALL).expect("resubmit");
                        let JobResponse::Accepted(a) = first else { panic!("{first:?}") };
                        let JobResponse::Accepted(b) = second else { panic!("{second:?}") };
                        assert_eq!(a, b, "duplicate nonce must replay the same job id");
                    }
                    FaultKind::PoisonJob => {
                        let mut c = JobClient::connect(addr).expect("connect");
                        let tenant = format!("poison{round}");
                        let resp = c.submit(&tenant, 1, POISON_SPEC).expect("submit");
                        let JobResponse::Accepted(id) = resp else { panic!("{resp:?}") };
                        assert_eq!(wait_terminal(&mut c, id), JobState::Failed);
                    }
                    _ => {}
                }
                // The daemon survived the fault: a fresh connection
                // still gets a HEALTH reply.
                let mut probe = JobClient::connect(addr).expect("reconnect");
                assert!(matches!(probe.health().expect("health"), JobResponse::Health { .. }));
                injector.absorb(fault);
            }
        }
        let report = injector.report();
        assert_eq!(report.escaped, 0, "a serve fault escaped: {report:?}");
        assert_eq!(report.by_site.len(), 1);
        assert_eq!(report.by_site[0].site, "serve");
        assert!(report.injected >= 4);
    }

    #[test]
    fn queue_full_rejection_is_immediate_over_the_wire() {
        // A full queue and no workers draining it: the second submit
        // must come back `queue-full` instantly, not hang waiting for
        // a slot.
        let cfg = SchedConfig {
            workers: 1,
            queue_cap: 1,
            tenant_quota: 1,
            breaker_threshold: 1000,
            quantum: 1,
        };
        let storage = MemStorage::new();
        let sched = Arc::new(
            Scheduler::recover(cfg, factory(), Arc::new(storage)).expect("recover"),
        );
        let daemon = Daemon::bind("127.0.0.1:0", Arc::clone(&sched)).expect("bind");
        let addr = daemon.local_addr().expect("addr");
        std::thread::spawn(move || daemon.serve_forever());
        let mut client = JobClient::connect(addr).expect("connect");
        let first = client.submit("alice", 1, SMALL).expect("submit");
        assert!(matches!(first, JobResponse::Accepted(_)));
        let started = std::time::Instant::now();
        let second = client.submit("bob", 1, SMALL).expect("submit");
        assert_eq!(second, JobResponse::Rejected(RejectReason::QueueFull));
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "a typed rejection must never block on the queued job"
        );
    }
}
