//! The daemon's scheduler: bounded admission, per-tenant
//! deficit-round-robin fairness, virtual-clock deadlines,
//! cancellation, a per-tenant circuit breaker, and write-ahead
//! recovery.
//!
//! Jobs execute **serially within themselves** — a job is grown slice
//! by slice through [`Sweep::run_slice`], so its journal is
//! byte-identical to a one-shot run no matter how slices interleave
//! with other jobs. Concurrency lives *between* jobs: `workers`
//! scheduler threads each pick a tenant by deficit round-robin, pop
//! that tenant's front job, run one slice, and requeue. Fairness,
//! deadlines, cancellation and the breaker are therefore pure
//! scheduling policy: none of them can change a journal byte, only
//! *whether* and *when* bytes get written.
//!
//! All file I/O goes through the [`JobStorage`] trait (the daemon
//! plugs in [`FileStorage`](crate::storage::FileStorage)); all socket
//! I/O lives in the daemon module. This module's own effect budget is
//! scheduler state + the harness's seeded execution.

use crate::ledger::{parse_ledger, LedgerHeader, LedgerLine};
use crate::spec::{JobSpec, MAX_SPEC_LEN};
use crate::storage::JobStorage;
use netrepro_core::harness::{parse_journal, MemoryJournal, Sweep, SweepConfig};
use netrepro_rps::{JobState, RejectReason};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Builds the per-job [`Sweep`] runtime. The caller wires the same
/// gate and (shared, warm) memo the one-shot CLI uses, so a job's
/// journal cannot depend on which path ran it.
pub type RuntimeFactory = Arc<dyn Fn(&SweepConfig) -> Sweep + Send + Sync>;

/// Scheduler tuning. Everything is in virtual units (jobs, cells) —
/// never wall time.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Scheduler worker threads (concurrent jobs in flight).
    pub workers: usize,
    /// Bounded admission queue: maximum live (queued + running) jobs
    /// across all tenants.
    pub queue_cap: usize,
    /// Maximum live jobs per tenant.
    pub tenant_quota: usize,
    /// Consecutive failed jobs after which a tenant's breaker opens.
    pub breaker_threshold: u32,
    /// Deficit-round-robin quantum, in cells credited per visit.
    pub quantum: u64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            workers: 2,
            queue_cap: 16,
            tenant_quota: 4,
            breaker_threshold: 3,
            quantum: 8,
        }
    }
}

/// One admitted job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Daemon-assigned id (sequential, persisted via the ledger).
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// The client's idempotency nonce.
    pub nonce: u64,
    /// Parsed spec.
    pub spec: JobSpec,
    /// The spec token exactly as submitted (ledger fidelity).
    pub spec_token: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Cells committed to the journal.
    pub journaled: u64,
    /// Matrix size.
    pub total: u64,
    /// Virtual clock after the last committed cell.
    pub clock: u64,
    /// Cancellation was requested; the worker honours it at the next
    /// slice boundary.
    pub cancel: bool,
    /// The rendered report, once the job is done.
    pub report_json: Option<String>,
}

/// What admission decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// Admitted (or replayed: a duplicate `(tenant, nonce)` returns
    /// the original id).
    Accepted(u64),
    /// Refused with a typed reason.
    Rejected(RejectReason),
    /// The spec token did not parse.
    Malformed(String),
    /// The daemon is draining and admits nothing.
    Draining,
}

struct TenantQueue {
    tenant: String,
    queue: VecDeque<u64>,
    deficit: u64,
    /// Consecutive failed/deadline'd jobs (the breaker counter).
    failures: u32,
}

struct SchedState {
    jobs: BTreeMap<u64, JobRecord>,
    by_nonce: BTreeMap<(String, u64), u64>,
    ring: Vec<TenantQueue>,
    cursor: usize,
    next_id: u64,
    running: usize,
    draining: bool,
    shutdown: bool,
}

impl SchedState {
    fn tenant_mut(&mut self, tenant: &str) -> &mut TenantQueue {
        if let Some(i) = self.ring.iter().position(|t| t.tenant == tenant) {
            return &mut self.ring[i];
        }
        self.ring.push(TenantQueue {
            tenant: tenant.to_string(),
            queue: VecDeque::new(),
            deficit: 0,
            failures: 0,
        });
        let last = self.ring.len() - 1;
        &mut self.ring[last]
    }

    fn live_total(&self) -> usize {
        self.jobs.values().filter(|j| j.state.is_live()).count()
    }

    fn live_of(&self, tenant: &str) -> usize {
        self.jobs.values().filter(|j| j.state.is_live() && j.tenant == tenant).count()
    }

    fn has_runnable(&self) -> bool {
        self.ring.iter().any(|t| !t.queue.is_empty())
    }
}

/// The scheduler. Shared behind an [`Arc`]; worker threads are
/// started with [`Scheduler::start_workers`].
pub struct Scheduler {
    state: Mutex<SchedState>,
    work_ready: Condvar,
    idle: Condvar,
    cfg: SchedConfig,
    factory: RuntimeFactory,
    storage: Arc<dyn JobStorage>,
}

impl Scheduler {
    /// Create a scheduler over `storage`, replaying the ledger: jobs
    /// submitted but not finished before the last shutdown (or crash)
    /// are re-queued in their original admission order, each resuming
    /// from its journal's valid prefix.
    pub fn recover(
        cfg: SchedConfig,
        factory: RuntimeFactory,
        storage: Arc<dyn JobStorage>,
    ) -> Result<Scheduler, String> {
        let text = storage.ledger_load()?;
        let replay = parse_ledger(&text)?;
        if replay.dropped_partial {
            storage.ledger_truncate(replay.valid_bytes)?;
        }
        if !replay.has_header {
            storage.ledger_append(&LedgerHeader::line()?)?;
        }
        let mut state = SchedState {
            jobs: BTreeMap::new(),
            by_nonce: BTreeMap::new(),
            ring: Vec::new(),
            cursor: 0,
            next_id: 1,
            running: 0,
            draining: false,
            shutdown: false,
        };
        for line in &replay.lines {
            match line {
                LedgerLine::Submitted { job, tenant, nonce, spec } => {
                    let parsed = JobSpec::parse(spec)
                        .map_err(|e| format!("ledger job {job}: {e}"))?;
                    let total = parsed.config.total_cells() as u64;
                    state.by_nonce.insert((tenant.clone(), *nonce), *job);
                    state.next_id = state.next_id.max(job + 1);
                    state.jobs.insert(
                        *job,
                        JobRecord {
                            id: *job,
                            tenant: tenant.clone(),
                            nonce: *nonce,
                            spec: parsed,
                            spec_token: spec.clone(),
                            state: JobState::Queued,
                            journaled: 0,
                            total,
                            clock: 0,
                            cancel: false,
                            report_json: None,
                        },
                    );
                }
                LedgerLine::Done { job, outcome } => {
                    let terminal = JobState::parse(outcome)
                        .filter(|s| !s.is_live())
                        .ok_or_else(|| format!("ledger job {job}: bad outcome {outcome:?}"))?;
                    let rec = state
                        .jobs
                        .get_mut(job)
                        .ok_or_else(|| format!("ledger: Done for unknown job {job}"))?;
                    rec.state = terminal;
                    if terminal == JobState::Done {
                        rec.journaled = rec.total;
                    }
                }
            }
        }
        // Rebuild each tenant's breaker from its terminal outcomes in
        // ledger order, then queue the survivors in admission order.
        for line in &replay.lines {
            if let LedgerLine::Done { job, outcome } = line {
                if let Some(tenant) = state.jobs.get(job).map(|j| j.tenant.clone()) {
                    let failed = matches!(
                        JobState::parse(outcome),
                        Some(JobState::Failed) | Some(JobState::Deadline)
                    );
                    let tq = state.tenant_mut(&tenant);
                    if failed {
                        tq.failures += 1;
                    } else {
                        tq.failures = 0;
                    }
                }
            }
        }
        let pending: Vec<u64> = state
            .jobs
            .values()
            .filter(|j| j.state.is_live())
            .map(|j| j.id)
            .collect();
        for id in pending {
            // Resume point: parse the journal's valid prefix, truncate
            // the torn tail the crash left behind.
            let (config, tenant) = {
                let rec = &state.jobs[&id];
                (rec.spec.config.clone(), rec.tenant.clone())
            };
            let text = storage.journal_load(id)?;
            let journal = parse_journal(&text, &config)
                .map_err(|e| format!("job {id} journal: {e}"))?;
            if journal.dropped_partial {
                storage.journal_truncate(id, journal.valid_bytes)?;
            }
            if let Some(rec) = state.jobs.get_mut(&id) {
                rec.journaled = journal.records.len() as u64;
                rec.clock = journal.records.last().map_or(0, |r| r.clock_end);
            }
            state.tenant_mut(&tenant).queue.push_back(id);
        }
        Ok(Scheduler {
            state: Mutex::new(state),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
            cfg,
            factory,
            storage,
        })
    }

    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Admit (or refuse) a job. Typed, never blocking: the caller can
    /// always answer the client immediately.
    pub fn submit(&self, tenant: &str, nonce: u64, spec_token: &str) -> Result<Admission, String> {
        let mut state = self.lock();
        if state.draining {
            return Ok(Admission::Draining);
        }
        if spec_token.len() > MAX_SPEC_LEN {
            return Ok(Admission::Rejected(RejectReason::PayloadTooLarge));
        }
        let spec = match JobSpec::parse(spec_token) {
            Ok(s) => s,
            Err(e) => return Ok(Admission::Malformed(e.to_string())),
        };
        let key = (tenant.to_string(), nonce);
        if let Some(&id) = state.by_nonce.get(&key) {
            // Duplicate submit (client retry): idempotent.
            return Ok(Admission::Accepted(id));
        }
        if state.tenant_mut(tenant).failures >= self.cfg.breaker_threshold {
            return Ok(Admission::Rejected(RejectReason::TenantBreakerOpen));
        }
        if state.live_of(tenant) >= self.cfg.tenant_quota {
            return Ok(Admission::Rejected(RejectReason::TenantOverQuota));
        }
        if state.live_total() >= self.cfg.queue_cap {
            return Ok(Admission::Rejected(RejectReason::QueueFull));
        }
        let id = state.next_id;
        state.next_id += 1;
        // Write-ahead: the ledger line lands before the client ever
        // sees ACCEPTED, so a crash cannot lose an acked job.
        self.storage.ledger_append(
            &LedgerLine::Submitted {
                job: id,
                tenant: tenant.to_string(),
                nonce,
                spec: spec_token.to_string(),
            }
            .line()?,
        )?;
        let total = spec.config.total_cells() as u64;
        state.by_nonce.insert(key, id);
        state.jobs.insert(
            id,
            JobRecord {
                id,
                tenant: tenant.to_string(),
                nonce,
                spec,
                spec_token: spec_token.to_string(),
                state: JobState::Queued,
                journaled: 0,
                total,
                clock: 0,
                cancel: false,
                report_json: None,
            },
        );
        state.tenant_mut(tenant).queue.push_back(id);
        self.work_ready.notify_one();
        Ok(Admission::Accepted(id))
    }

    /// One job's `(state, journaled, total)`, if it exists.
    pub fn status(&self, id: u64) -> Option<(JobState, u64, u64)> {
        let state = self.lock();
        state.jobs.get(&id).map(|j| (j.state, j.journaled, j.total))
    }

    /// Request cancellation. A queued job cancels immediately; a
    /// running one is flagged and finalised at its next slice
    /// boundary (its journal keeps the committed prefix). Returns the
    /// job's state after the request, or `None` for an unknown id.
    pub fn cancel(&self, id: u64) -> Result<Option<JobState>, String> {
        let mut state = self.lock();
        let Some(rec) = state.jobs.get_mut(&id) else {
            return Ok(None);
        };
        match rec.state {
            JobState::Queued => {
                rec.cancel = true;
                let tenant = rec.tenant.clone();
                state.tenant_mut(&tenant).queue.retain(|&q| q != id);
                self.finalize(&mut state, id, JobState::Cancelled)?;
                Ok(Some(JobState::Cancelled))
            }
            JobState::Running => {
                rec.cancel = true;
                Ok(Some(JobState::Running))
            }
            terminal => Ok(Some(terminal)),
        }
    }

    /// Fetch a finished job's rendered report. `Ok(None)` when the
    /// job exists but is not `Done` (the caller reports state
    /// instead); an unknown id is an error.
    pub fn results(&self, id: u64) -> Result<Option<String>, String> {
        let config = {
            let state = self.lock();
            let rec = state.jobs.get(&id).ok_or_else(|| format!("no such job {id}"))?;
            if rec.state != JobState::Done {
                return Ok(None);
            }
            if let Some(json) = &rec.report_json {
                return Ok(Some(json.clone()));
            }
            rec.spec.config.clone()
        };
        // Reconstruct from the journal (post-restart): replaying a
        // complete journal re-assembles the identical report without
        // executing a single cell.
        let text = self.storage.journal_load(id)?;
        let replay = parse_journal(&text, &config).map_err(|e| e.to_string())?;
        let runtime = (self.factory)(&config);
        let mut sink = MemoryJournal::new();
        let step = runtime.run_slice(&replay, &mut sink, 0)?;
        let json = step
            .report
            .map(|r| r.render_json())
            .ok_or_else(|| format!("job {id}: journal incomplete"))?;
        let mut state = self.lock();
        if let Some(rec) = state.jobs.get_mut(&id) {
            rec.report_json = Some(json.clone());
        }
        Ok(Some(json))
    }

    /// Queue depths by lifecycle bucket: `(queued, running, done)`.
    pub fn health(&self) -> (u64, u64, u64) {
        let state = self.lock();
        let mut queued = 0;
        let mut running = 0;
        let mut done = 0;
        for j in state.jobs.values() {
            match j.state {
                JobState::Queued => queued += 1,
                JobState::Running => running += 1,
                _ => done += 1,
            }
        }
        (queued, running, done)
    }

    /// Stop admitting; in-flight jobs run to completion (or their
    /// next checkpoint, if the process is killed — the ledger covers
    /// that). Returns the number of jobs still live.
    pub fn drain(&self) -> u64 {
        let mut state = self.lock();
        state.draining = true;
        let live = state.live_total() as u64;
        self.work_ready.notify_all();
        live
    }

    /// Block until no job is live (all queues empty, nothing running).
    pub fn wait_idle(&self) {
        let mut state = self.lock();
        while state.live_total() > 0 {
            state = self.idle.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Stop the worker threads after their current slice.
    pub fn shutdown(&self) {
        let mut state = self.lock();
        state.shutdown = true;
        self.work_ready.notify_all();
    }

    /// Spawn the scheduler's worker threads.
    pub fn start_workers(self: &Arc<Self>) -> Vec<std::thread::JoinHandle<()>> {
        (0..self.cfg.workers.max(1))
            .map(|_| {
                let sched = Arc::clone(self);
                std::thread::spawn(move || sched.worker_loop())
            })
            .collect()
    }

    /// Finalize a job: set its terminal state, update the tenant
    /// breaker, append the `Done` ledger line, wake idle waiters.
    fn finalize(
        &self,
        state: &mut SchedState,
        id: u64,
        terminal: JobState,
    ) -> Result<(), String> {
        let tenant = {
            let Some(rec) = state.jobs.get_mut(&id) else {
                return Err(format!("finalize: no such job {id}"));
            };
            rec.state = terminal;
            rec.tenant.clone()
        };
        let failed = matches!(terminal, JobState::Failed | JobState::Deadline);
        let tq = state.tenant_mut(&tenant);
        if failed {
            tq.failures += 1;
        } else if terminal == JobState::Done {
            tq.failures = 0;
        }
        self.storage
            .ledger_append(&LedgerLine::Done { job: id, outcome: terminal.wire().to_string() }.line()?)?;
        self.idle.notify_all();
        Ok(())
    }

    /// Pick the next `(job, slice budget)` by deficit round-robin.
    fn pick(&self, state: &mut SchedState) -> Option<(u64, u64)> {
        let n = state.ring.len();
        for step in 0..n {
            let idx = (state.cursor + step) % n;
            if state.ring[idx].queue.is_empty() {
                // An idle tenant banks no deficit.
                state.ring[idx].deficit = 0;
                continue;
            }
            let tq = &mut state.ring[idx];
            tq.deficit = tq.deficit.saturating_add(self.cfg.quantum);
            let budget = tq.deficit;
            let id = tq.queue.pop_front()?;
            state.cursor = (idx + 1) % n;
            return Some((id, budget));
        }
        None
    }

    fn worker_loop(&self) {
        loop {
            let (id, budget, config, before) = {
                let mut state = self.lock();
                loop {
                    if state.shutdown {
                        return;
                    }
                    if state.has_runnable() {
                        break;
                    }
                    state = self.work_ready.wait(state).unwrap_or_else(|p| p.into_inner());
                }
                let Some((id, budget)) = self.pick(&mut state) else {
                    continue;
                };
                let (config, before) = {
                    let Some(rec) = state.jobs.get_mut(&id) else {
                        continue;
                    };
                    rec.state = JobState::Running;
                    (rec.spec.config.clone(), rec.journaled)
                };
                state.running += 1;
                (id, budget, config, before)
            };

            // Execute one slice outside the lock. catch_unwind is the
            // poison-job absorber: a spec whose execution panics takes
            // down its own job, never the scheduler worker.
            let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<_, String> {
                let text = self.storage.journal_load(id)?;
                let replay = parse_journal(&text, &config).map_err(|e| e.to_string())?;
                let mut sink = self.storage.journal_sink(id)?;
                let runtime = (self.factory)(&config);
                runtime.run_slice(&replay, sink.as_mut(), budget)
            }));

            let mut state = self.lock();
            state.running -= 1;
            let step = match outcome {
                Err(_) => {
                    // Poison job: the panic is absorbed here.
                    let _ = self.finalize(&mut state, id, JobState::Failed);
                    continue;
                }
                Ok(Err(_)) => {
                    let _ = self.finalize(&mut state, id, JobState::Failed);
                    continue;
                }
                Ok(Ok(step)) => step,
            };
            let executed = step.journaled.saturating_sub(before);
            let (tenant, cancel, clock_limit) = {
                let Some(rec) = state.jobs.get_mut(&id) else {
                    continue;
                };
                rec.journaled = step.journaled;
                rec.total = step.total;
                rec.clock = step.clock;
                if let Some(report) = &step.report {
                    rec.report_json = Some(report.render_json());
                }
                (rec.tenant.clone(), rec.cancel, rec.spec.clock_limit)
            };
            {
                let tq = state.tenant_mut(&tenant);
                tq.deficit = tq.deficit.saturating_sub(executed);
            }
            if cancel {
                let _ = self.finalize(&mut state, id, JobState::Cancelled);
            } else if step.report.is_some() {
                let _ = self.finalize(&mut state, id, JobState::Done);
            } else if clock_limit > 0 && step.clock >= clock_limit {
                // The job's virtual clock ran out between slices. The
                // journal keeps its committed prefix — byte-identical
                // to the uninterrupted run's prefix.
                let _ = self.finalize(&mut state, id, JobState::Deadline);
            } else {
                // More cells to go: back to the *front* of the
                // tenant's queue so the job stays contiguous.
                if let Some(rec) = state.jobs.get_mut(&id) {
                    rec.state = JobState::Queued;
                }
                state.tenant_mut(&tenant).queue.push_front(id);
                self.work_ready.notify_one();
            }
        }
    }
}
