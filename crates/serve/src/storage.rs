//! Durable storage for the daemon: the job ledger and one journal
//! file per job.
//!
//! The scheduler talks to a [`JobStorage`] trait so its decision paths
//! stay free of file-system effects; [`FileStorage`] is the real
//! implementation (one directory, `ledger.jsonl` plus
//! `job-<id>.jsonl`), [`MemStorage`] backs unit and property tests.

use netrepro_core::harness::JournalSink;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Where the daemon's ledger and per-job journals live.
pub trait JobStorage: Send + Sync {
    /// Read the whole ledger (empty string if absent).
    fn ledger_load(&self) -> Result<String, String>;
    /// Truncate the ledger to its valid prefix (crash-torn tail).
    fn ledger_truncate(&self, valid_bytes: u64) -> Result<(), String>;
    /// Append one newline-terminated ledger line, flushed before
    /// return (the write-ahead barrier).
    fn ledger_append(&self, line: &str) -> Result<(), String>;
    /// Read one job's journal (empty string if absent).
    fn journal_load(&self, job: u64) -> Result<String, String>;
    /// Truncate one job's journal to its valid prefix.
    fn journal_truncate(&self, job: u64, valid_bytes: u64) -> Result<(), String>;
    /// Open an append sink for one job's journal; every appended line
    /// is flushed before the append returns.
    fn journal_sink(&self, job: u64) -> Result<Box<dyn JournalSink + Send>, String>;
}

// ---------------------------------------------------------------- mem

#[derive(Debug, Default)]
struct MemInner {
    ledger: String,
    journals: BTreeMap<u64, String>,
}

/// In-memory storage for tests and embedding.
#[derive(Debug, Default, Clone)]
pub struct MemStorage {
    inner: Arc<Mutex<MemInner>>,
}

impl MemStorage {
    /// Fresh, empty storage.
    pub fn new() -> MemStorage {
        MemStorage::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The current journal text of `job` (for assertions).
    pub fn journal_text(&self, job: u64) -> String {
        self.lock().journals.get(&job).cloned().unwrap_or_default()
    }

    /// The current ledger text (for assertions).
    pub fn ledger_text(&self) -> String {
        self.lock().ledger.clone()
    }

    /// Chop bytes off the *end* of a job journal, simulating a crash
    /// that tore the final write.
    pub fn tear_journal(&self, job: u64, drop_bytes: usize) {
        let mut inner = self.lock();
        if let Some(j) = inner.journals.get_mut(&job) {
            let keep = j.len().saturating_sub(drop_bytes);
            j.truncate(keep);
        }
    }
}

struct MemSink {
    storage: MemStorage,
    job: u64,
}

impl JournalSink for MemSink {
    fn append(&mut self, line: &str) -> Result<(), String> {
        self.storage.lock().journals.entry(self.job).or_default().push_str(line);
        Ok(())
    }
}

impl JobStorage for MemStorage {
    fn ledger_load(&self) -> Result<String, String> {
        Ok(self.lock().ledger.clone())
    }

    fn ledger_truncate(&self, valid_bytes: u64) -> Result<(), String> {
        self.lock().ledger.truncate(valid_bytes as usize);
        Ok(())
    }

    fn ledger_append(&self, line: &str) -> Result<(), String> {
        self.lock().ledger.push_str(line);
        Ok(())
    }

    fn journal_load(&self, job: u64) -> Result<String, String> {
        Ok(self.journal_text(job))
    }

    fn journal_truncate(&self, job: u64, valid_bytes: u64) -> Result<(), String> {
        let mut inner = self.lock();
        if let Some(j) = inner.journals.get_mut(&job) {
            j.truncate(valid_bytes as usize);
        }
        Ok(())
    }

    fn journal_sink(&self, job: u64) -> Result<Box<dyn JournalSink + Send>, String> {
        Ok(Box::new(MemSink { storage: self.clone(), job }))
    }
}

// --------------------------------------------------------------- file

/// Directory-backed storage: `ledger.jsonl` + `job-<id>.jsonl`.
#[derive(Debug, Clone)]
pub struct FileStorage {
    dir: PathBuf,
}

impl FileStorage {
    /// Use (and create) `dir` as the daemon's state directory.
    // effect-allow(Io): creating the state directory is the storage
    // boundary's explicit job; nothing upstream of the daemon calls it.
    pub fn open(dir: impl Into<PathBuf>) -> Result<FileStorage, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        Ok(FileStorage { dir })
    }

    /// The path of one job's journal file.
    pub fn journal_path(&self, job: u64) -> PathBuf {
        self.dir.join(format!("job-{job}.jsonl"))
    }

    fn ledger_path(&self) -> PathBuf {
        self.dir.join("ledger.jsonl")
    }

    // effect-allow(Io): reading a state file at the storage boundary.
    fn load(path: &PathBuf) -> Result<String, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(String::new()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    // effect-allow(Io): truncating a torn state file at the storage
    // boundary (the crash-recovery path).
    fn truncate(path: &PathBuf, valid_bytes: u64) -> Result<(), String> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        f.set_len(valid_bytes).map_err(|e| format!("{}: {e}", path.display()))
    }

    // effect-allow(Io): the write-ahead append at the storage
    // boundary; flushed before return so an acked line survives
    // SIGKILL.
    fn append(path: &PathBuf, line: &str) -> Result<(), String> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        f.write_all(line.as_bytes()).map_err(|e| format!("{}: {e}", path.display()))?;
        f.flush().map_err(|e| format!("{}: {e}", path.display()))
    }
}

struct FileSink {
    file: std::fs::File,
    path: PathBuf,
}

impl JournalSink for FileSink {
    // effect-allow(Io): per-line flushed journal append at the
    // storage boundary (same discipline as the CLI's FileJournal).
    fn append(&mut self, line: &str) -> Result<(), String> {
        self.file
            .write_all(line.as_bytes())
            .and_then(|_| self.file.flush())
            .map_err(|e| format!("{}: {e}", self.path.display()))
    }
}

impl JobStorage for FileStorage {
    fn ledger_load(&self) -> Result<String, String> {
        FileStorage::load(&self.ledger_path())
    }

    fn ledger_truncate(&self, valid_bytes: u64) -> Result<(), String> {
        FileStorage::truncate(&self.ledger_path(), valid_bytes)
    }

    fn ledger_append(&self, line: &str) -> Result<(), String> {
        FileStorage::append(&self.ledger_path(), line)
    }

    fn journal_load(&self, job: u64) -> Result<String, String> {
        FileStorage::load(&self.journal_path(job))
    }

    fn journal_truncate(&self, job: u64, valid_bytes: u64) -> Result<(), String> {
        FileStorage::truncate(&self.journal_path(job), valid_bytes)
    }

    // effect-allow(Io): opening the append handle at the storage
    // boundary.
    fn journal_sink(&self, job: u64) -> Result<Box<dyn JournalSink + Send>, String> {
        let path = self.journal_path(job);
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(Box::new(FileSink { file, path }))
    }
}
