//! The write-ahead job ledger: the daemon's durable memory.
//!
//! Every admission writes a [`LedgerLine::Submitted`] *before* the
//! client sees `ACCEPTED`, and every terminal transition writes a
//! [`LedgerLine::Done`] after the job's journal is flushed — the same
//! write-ahead discipline as the shard coordinator's lease ledger
//! (`core::shard`). A SIGKILL'd daemon therefore restarts knowing
//! exactly which jobs were admitted and which finished; everything in
//! between resumes from its own journal's valid prefix and re-runs
//! byte-identically (cells are pure functions of the cell id).
//!
//! This module is pure parse/format — all file I/O lives at the
//! daemon boundary so the effects analyzer can budget these paths
//! without an `Io` grant.

use serde::{Deserialize, Serialize};

/// Ledger layout version.
pub const LEDGER_VERSION: u32 = 1;

/// First line of the ledger file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LedgerHeader {
    /// Layout version ([`LEDGER_VERSION`]).
    pub version: u32,
}

impl LedgerHeader {
    /// The newline-terminated header line.
    pub fn line() -> Result<String, String> {
        json_line(&LedgerHeader { version: LEDGER_VERSION })
    }
}

/// One ledger record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LedgerLine {
    /// A job was admitted (written *before* the `ACCEPTED` reply).
    Submitted {
        /// Daemon-assigned job id.
        job: u64,
        /// Submitting tenant.
        tenant: String,
        /// The client's idempotency nonce.
        nonce: u64,
        /// The spec token exactly as submitted.
        spec: String,
    },
    /// A job reached a terminal state (written after its journal and
    /// report were flushed).
    Done {
        /// Which job finished.
        job: u64,
        /// Terminal [`JobState`](netrepro_rps::JobState) wire name
        /// (`done`, `failed`, `cancelled`, `deadline`).
        outcome: String,
    },
}

impl LedgerLine {
    /// The newline-terminated ledger line.
    pub fn line(&self) -> Result<String, String> {
        json_line(self)
    }
}

/// The replayable prefix of a ledger file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LedgerReplay {
    /// Records in write order.
    pub lines: Vec<LedgerLine>,
    /// Byte length of the valid prefix (everything up to and
    /// including the last terminated line) — the truncation point
    /// after a torn tail.
    pub valid_bytes: u64,
    /// Whether a torn (unterminated) trailing line was dropped.
    pub dropped_partial: bool,
    /// Whether the header line is present and valid.
    pub has_header: bool,
}

fn json_line<T: Serialize>(value: &T) -> Result<String, String> {
    serde_json::to_string(value)
        .map(|mut s| {
            s.push('\n');
            s
        })
        .map_err(|e| e.to_string())
}

/// Parse a ledger file's text. The torn-tail policy mirrors
/// `core::harness::parse_journal`: an unterminated final line (the
/// write the crash interrupted) is silently dropped; any *terminated*
/// line that fails to parse is a hard error — the file is corrupt,
/// not merely torn.
pub fn parse_ledger(text: &str) -> Result<LedgerReplay, String> {
    if text.is_empty() {
        return Ok(LedgerReplay::default());
    }
    let mut parts: Vec<&str> = text.split('\n').collect();
    // split leaves a final "" for terminated text, or the torn tail.
    let tail = parts.pop().unwrap_or("");
    let dropped_partial = !tail.is_empty();
    let valid_bytes = (text.len() - tail.len()) as u64;
    let mut lines = Vec::new();
    let mut has_header = false;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        if i == 0 {
            let header: LedgerHeader = serde_json::from_str(part)
                .map_err(|e| format!("ledger header: {e}"))?;
            if header.version != LEDGER_VERSION {
                return Err(format!(
                    "ledger version {} (this build writes {LEDGER_VERSION})",
                    header.version
                ));
            }
            has_header = true;
            continue;
        }
        let line: LedgerLine =
            serde_json::from_str(part).map_err(|e| format!("ledger line {}: {e}", i + 1))?;
        lines.push(line);
    }
    Ok(LedgerReplay { lines, valid_bytes, dropped_partial, has_header })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        let mut text = LedgerHeader::line().unwrap();
        text.push_str(
            &LedgerLine::Submitted {
                job: 1,
                tenant: "alice".into(),
                nonce: 7,
                spec: "seeds=1".into(),
            }
            .line()
            .unwrap(),
        );
        text.push_str(&LedgerLine::Done { job: 1, outcome: "done".into() }.line().unwrap());
        text
    }

    #[test]
    fn round_trips() {
        let replay = parse_ledger(&sample()).unwrap();
        assert!(replay.has_header);
        assert!(!replay.dropped_partial);
        assert_eq!(replay.lines.len(), 2);
        assert!(matches!(replay.lines[0], LedgerLine::Submitted { job: 1, .. }));
        assert!(matches!(replay.lines[1], LedgerLine::Done { job: 1, .. }));
    }

    #[test]
    fn torn_tail_is_dropped() {
        let clean = sample();
        let mut text = clean.clone();
        text.push_str("{\"Submitted\":{\"job\":2,\"ten"); // the crash
        let replay = parse_ledger(&text).unwrap();
        assert!(replay.dropped_partial);
        assert_eq!(replay.lines.len(), 2, "torn line must not surface");
        assert_eq!(replay.valid_bytes, clean.len() as u64);
    }

    #[test]
    fn corrupt_interior_line_is_a_hard_error() {
        let sample = sample();
        let lines: Vec<&str> = sample.lines().collect();
        let text = format!("{}\nnot json\n{}\n", lines[0], lines[2]);
        assert!(parse_ledger(&text).is_err());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let text = "{\"version\":99}\n";
        assert!(parse_ledger(text).unwrap_err().contains("version"));
    }

    #[test]
    fn empty_ledger_is_empty() {
        let replay = parse_ledger("").unwrap();
        assert!(!replay.has_header);
        assert!(replay.lines.is_empty());
    }
}
