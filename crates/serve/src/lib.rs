//! `netrepro serve`: a crash-tolerant, multi-tenant daemon that runs
//! sweep jobs submitted over the wire.
//!
//! The paper's reproduction matrix is normally driven by the one-shot
//! CLI (`netrepro sweep`). This crate wraps the same harness in a
//! persistent service so several tenants can share one warm process —
//! and makes the robustness properties explicit:
//!
//! * **Typed backpressure** — admission never hangs; every refusal is
//!   a [`RejectReason`](netrepro_rps::RejectReason) the client can act
//!   on (`queue-full`, `payload-too-large`, `tenant-over-quota`,
//!   `tenant-breaker-open`).
//! * **Fairness** — tenants share the workers by deficit round-robin
//!   ([`sched`]); a tenant with a huge matrix cannot starve one with a
//!   small one.
//! * **Deadlines & cancellation** — per-job virtual-clock budgets and
//!   `CANCEL`, both enforced at slice boundaries so they never tear a
//!   journal.
//! * **Crash tolerance** — a write-ahead ledger ([`ledger`]) plus
//!   per-job journals ([`storage`]) let a SIGKILL'd daemon restart and
//!   finish every acked job **byte-identically**.
//!
//! The determinism contract, inherited from the harness: a job's
//! journal and report are byte-identical to running the same spec via
//! the one-shot CLI, regardless of arrival order, concurrency, tenant
//! mix, memoization, or a mid-job crash.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod ledger;
pub mod sched;
pub mod spec;
pub mod storage;

pub use daemon::{Daemon, JobClient, DEFAULT_READ_TIMEOUT};
pub use ledger::{parse_ledger, LedgerHeader, LedgerLine, LedgerReplay, LEDGER_VERSION};
pub use sched::{Admission, JobRecord, RuntimeFactory, SchedConfig, Scheduler};
pub use spec::{JobSpec, SpecError, MAX_SPEC_LEN};
pub use storage::{FileStorage, JobStorage, MemStorage};
