//! ARROW (Zhong et al., SIGCOMM 2021): restoration-aware traffic
//! engineering over an optical WAN.
//!
//! When a fiber is cut, optical restoration can re-provision part of its
//! capacity over surviving spectrum. ARROW plans TE so the network
//! carries a committed bandwidth per commodity under *every* failure
//! scenario, given candidate restoration allocations ("lottery
//! tickets").
//!
//! The HotNets'23 paper (participant B) found the released ARROW code
//! and the paper text disagree — "some predefined parameters in the
//! paper are implemented as decision variables in the open-source
//! prototype", and the definition of a restorable tunnel differs —
//! causing up to 30% objective discrepancy. Both formulations are
//! implemented here:
//!
//! * [`ArrowVariant::Faithful`] — what participant B built from the
//!   paper text: each cut fiber's restored capacity is a **predefined
//!   parameter** (the restoration budget split evenly across the cut
//!   fibers of a scenario), and a tunnel counts as restorable only if
//!   every cut fiber it crosses receives restoration.
//! * [`ArrowVariant::OpenSource`] — what the released prototype does:
//!   restored capacities are **decision variables** sharing the same
//!   total budget, jointly optimised with the flow.
//!
//! The open-source variant dominates the faithful one by construction;
//! Table B measures the gap.

use crate::mcf::{build_tunnels, TeInstance};
use crate::TeError;
use netrepro_graph::EdgeId;
use netrepro_lp::{LpSolver, Problem, Sense, Status, VarId};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Which formulation to solve (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrowVariant {
    /// Paper-text formulation: predefined restoration parameters.
    Faithful,
    /// Released-code formulation: restoration as decision variables.
    OpenSource,
}

/// A failure scenario: the set of cut fibers (edge ids; cutting an edge
/// cuts its reverse too, as both directions ride the same fiber).
#[derive(Debug, Clone)]
pub struct FailureScenario {
    /// Cut fiber edges.
    pub cut: Vec<EdgeId>,
}

/// An ARROW instance: a TE instance plus failure scenarios and the
/// restoration budget fraction.
#[derive(Debug, Clone)]
pub struct ArrowInstance {
    /// The underlying TE instance (topology, demands, tunnel budget).
    pub te: TeInstance,
    /// The failure scenarios to survive.
    pub scenarios: Vec<FailureScenario>,
    /// Fraction of a scenario's lost capacity that restoration can
    /// recover in total (the "lottery ticket" budget).
    pub restoration_fraction: f64,
}

/// Outcome of an ARROW solve.
#[derive(Debug, Clone)]
pub struct ArrowSolution {
    /// Total committed (guaranteed-under-all-scenarios) bandwidth.
    pub committed: f64,
    /// Committed bandwidth per commodity.
    pub per_commodity: Vec<f64>,
    /// Wall-clock solve time.
    pub solve_time: Duration,
    /// LP pivots.
    pub lp_iterations: u64,
}

impl ArrowInstance {
    /// Expand the cut set of a scenario to include reverse edges (both
    /// directions of a fiber fail together).
    fn full_cut(&self, s: &FailureScenario) -> BTreeSet<EdgeId> {
        let g = &self.te.graph;
        let mut out = BTreeSet::new();
        for &e in &s.cut {
            out.insert(e);
            let (a, b) = g.endpoints(e);
            if let Some(rev) = g.find_edge(b, a) {
                out.insert(rev);
            }
        }
        out
    }
}

/// Solve an ARROW instance under the chosen variant.
pub fn solve_arrow(
    inst: &ArrowInstance,
    variant: ArrowVariant,
    solver: &dyn LpSolver,
) -> Result<ArrowSolution, TeError> {
    let start = Instant::now();
    let g = &inst.te.graph;
    let commodities = inst.te.commodities();
    let tunnels = build_tunnels(g, &commodities, inst.te.paths_per_commodity);

    let mut p = Problem::new(Sense::Maximize);
    // Committed bandwidth per commodity: the objective.
    let b: Vec<VarId> = commodities
        .iter()
        .enumerate()
        .map(|(k, &(_, _, demand))| p.add_var(&format!("b{k}"), 0.0, demand, 1.0))
        .collect();

    // Scenario 0 is "no failure": the nominal allocation must also work.
    // BTreeSet, not HashSet: the cut is *iterated* below — the f64
    // budget sum and the LP restoration-variable order must not depend
    // on hash order.
    let mut scenario_cuts: Vec<BTreeSet<EdgeId>> = vec![BTreeSet::new()];
    for s in &inst.scenarios {
        scenario_cuts.push(inst.full_cut(s));
    }

    for (q, cut) in scenario_cuts.iter().enumerate() {
        // Restored capacity per cut fiber.
        let budget: f64 = cut.iter().map(|&e| g.capacity(e)).sum::<f64>()
            * inst.restoration_fraction
            / 2.0; // per direction: each fiber counted twice in `cut`
        let mut restored: std::collections::HashMap<EdgeId, RestoredCap> =
            std::collections::HashMap::new();
        match variant {
            ArrowVariant::Faithful => {
                // Predefined parameter: budget split evenly across the
                // scenario's cut fibers (per direction).
                let n_cut = cut.len().max(1) as f64;
                for &e in cut {
                    restored.insert(e, RestoredCap::Fixed(2.0 * budget / n_cut));
                }
            }
            ArrowVariant::OpenSource => {
                // Decision variables with a shared budget per direction
                // pairing; bounded by the fiber's own capacity.
                let mut row: Vec<(VarId, f64)> = Vec::new();
                for &e in cut {
                    let v = p.add_var(&format!("r_{q}_{}", e.index()), 0.0, g.capacity(e), 0.0);
                    restored.insert(e, RestoredCap::Var(v));
                    row.push((v, 1.0));
                }
                if !row.is_empty() {
                    p.add_le(&row, 2.0 * budget);
                }
            }
        }

        // Per-scenario flows.
        let mut edge_rows: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); g.num_edges()];
        for (k, paths) in tunnels.tunnels.iter().enumerate() {
            if paths.is_empty() {
                let (src, dst, _) = commodities[k];
                return Err(TeError::NoTunnels { src, dst });
            }
            let mut row: Vec<(VarId, f64)> = Vec::new();
            for (t, path) in paths.iter().enumerate() {
                let crosses: Vec<EdgeId> =
                    path.edges.iter().copied().filter(|e| cut.contains(e)).collect();
                // Faithful restorable-tunnel rule (the stricter reading
                // participant B took from the paper text): a tunnel is
                // restorable only if it crosses at most ONE cut fiber
                // and that fiber's predefined restoration is non-zero.
                // The released code has no such restriction: any tunnel
                // may use whatever restored capacity the optimiser buys.
                let usable = match variant {
                    ArrowVariant::Faithful => {
                        crosses.len() <= 1
                            && crosses.iter().all(|e| {
                                matches!(restored.get(e), Some(RestoredCap::Fixed(c)) if *c > 1e-12)
                            })
                    }
                    ArrowVariant::OpenSource => true,
                };
                if !usable {
                    continue;
                }
                let x = p.add_var(&format!("x_{q}_{k}_{t}"), 0.0, f64::INFINITY, 0.0);
                row.push((x, 1.0));
                for &e in &path.edges {
                    edge_rows[e.index()].push((x, 1.0));
                }
            }
            if row.is_empty() {
                // No usable tunnel in this scenario: commitment is 0.
                p.add_le(&[(b[k], 1.0)], 0.0);
            } else {
                // b_k <= served flow in scenario q.
                let mut srv: Vec<(VarId, f64)> = vec![(b[k], 1.0)];
                srv.extend(row.iter().map(|&(v, c)| (v, -c)));
                p.add_le(&srv, 0.0);
            }
        }
        // Capacities: survivors at full, cut fibers at restored.
        for (ei, row) in edge_rows.iter().enumerate() {
            if row.is_empty() {
                continue;
            }
            let e = EdgeId(ei as u32);
            match restored.get(&e) {
                None if cut.contains(&e) => {
                    // Unrestorable (cannot happen — every cut fiber gets
                    // an entry) — forbid use.
                    p.add_le(row, 0.0);
                }
                None => p.add_le(row, g.capacity(e)),
                Some(RestoredCap::Fixed(c)) => p.add_le(row, c.min(g.capacity(e))),
                Some(RestoredCap::Var(v)) => {
                    // sum x - r <= 0
                    let mut r2 = row.clone();
                    r2.push((*v, -1.0));
                    p.add_le(&r2, 0.0);
                }
            }
        }
    }

    let sol = solver.solve(&p)?;
    if sol.status != Status::Optimal {
        return Err(TeError::UnexpectedStatus(sol.status));
    }
    let per_commodity: Vec<f64> = b.iter().map(|&v| sol.value(v)).collect();
    Ok(ArrowSolution {
        committed: sol.objective,
        per_commodity,
        solve_time: start.elapsed(),
        lp_iterations: sol.iterations,
    })
}

enum RestoredCap {
    Fixed(f64),
    Var(VarId),
}

/// Build `count` large-scale cut scenarios of `fibers_per_scenario`
/// fibers each, chosen round-robin over the highest-capacity fibers —
/// the "massive fiber cut" regime ARROW's evaluation focuses on, and
/// the one where predefined-vs-optimised restoration splits diverge.
pub fn multi_fiber_scenarios(
    te: &TeInstance,
    count: usize,
    fibers_per_scenario: usize,
) -> Vec<FailureScenario> {
    let singles = single_fiber_scenarios(te, count * fibers_per_scenario);
    let mut out: Vec<FailureScenario> = (0..count).map(|_| FailureScenario { cut: Vec::new() }).collect();
    for (i, s) in singles.into_iter().enumerate() {
        out[i % count].cut.extend(s.cut);
    }
    out.retain(|s| !s.cut.is_empty());
    out
}

/// Like [`multi_fiber_scenarios`], but never cuts a bridge fiber:
/// cutting a bridge partitions the WAN, where no restoration policy can
/// help and every formulation trivially agrees. Restoration-sensitive
/// experiments want exactly the non-bridge cuts.
pub fn non_bridge_scenarios(
    te: &TeInstance,
    count: usize,
    fibers_per_scenario: usize,
) -> Vec<FailureScenario> {
    let cs = netrepro_graph::cuts::cut_structure(&te.graph);
    let bridge_set: std::collections::HashSet<EdgeId> = cs
        .bridges
        .iter()
        .flat_map(|&e| {
            let (a, b) = te.graph.endpoints(e);
            let rev = te.graph.find_edge(b, a);
            std::iter::once(e).chain(rev)
        })
        .collect();
    let mut out = multi_fiber_scenarios(te, count, fibers_per_scenario);
    for s in &mut out {
        s.cut.retain(|e| !bridge_set.contains(e));
    }
    out.retain(|s| !s.cut.is_empty());
    out
}

/// Build failure scenarios by cutting the `count` highest-capacity
/// fibers one at a time (single-failure scenarios, ARROW's common case).
pub fn single_fiber_scenarios(te: &TeInstance, count: usize) -> Vec<FailureScenario> {
    let g = &te.graph;
    // Consider each fiber once (pick the direction with the lower id).
    let mut fibers: Vec<EdgeId> = g
        .edges()
        .filter(|&e| {
            let (a, b) = g.endpoints(e);
            match g.find_edge(b, a) {
                Some(rev) => e < rev,
                None => true,
            }
        })
        .collect();
    fibers.sort_by(|&x, &y| {
        g.capacity(y).total_cmp(&g.capacity(x)).then_with(|| x.cmp(&y))
    });
    fibers
        .into_iter()
        .take(count)
        .map(|e| FailureScenario { cut: vec![e] })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrepro_graph::gen::ring;
    use netrepro_graph::traffic::TrafficMatrix;
    use netrepro_graph::NodeId;
    use netrepro_lp::revised::RevisedSimplex;

    fn instance() -> ArrowInstance {
        let graph = ring(6, 10.0);
        let mut tm = TrafficMatrix::zeros(6);
        tm.set(NodeId(0), NodeId(3), 15.0);
        tm.set(NodeId(1), NodeId(4), 8.0);
        let te = TeInstance { name: "ring".into(), graph, tm, paths_per_commodity: 3, max_commodities: 8 };
        let scenarios = single_fiber_scenarios(&te, 2);
        ArrowInstance { te, scenarios, restoration_fraction: 0.5 }
    }

    #[test]
    fn open_source_dominates_faithful() {
        let inst = instance();
        let f = solve_arrow(&inst, ArrowVariant::Faithful, &RevisedSimplex::default()).unwrap();
        let o = solve_arrow(&inst, ArrowVariant::OpenSource, &RevisedSimplex::default()).unwrap();
        assert!(
            o.committed >= f.committed - 1e-6,
            "open-source {} must dominate faithful {}",
            o.committed,
            f.committed
        );
    }

    #[test]
    fn committed_at_most_demand() {
        let inst = instance();
        let commodities = inst.te.commodities();
        for v in [ArrowVariant::Faithful, ArrowVariant::OpenSource] {
            let s = solve_arrow(&inst, v, &RevisedSimplex::default()).unwrap();
            for (c, (_, _, d)) in s.per_commodity.iter().zip(&commodities) {
                assert!(*c <= d + 1e-6);
            }
        }
    }

    #[test]
    fn no_scenarios_equals_plain_te() {
        let mut inst = instance();
        inst.scenarios.clear();
        let s = solve_arrow(&inst, ArrowVariant::OpenSource, &RevisedSimplex::default()).unwrap();
        let flat = crate::mcf::solve_mcf(&inst.te, &RevisedSimplex::default()).unwrap();
        assert!((s.committed - flat.total_flow).abs() < 1e-5);
    }

    #[test]
    fn zero_restoration_still_survives_via_reroute() {
        // On a ring, cutting one fiber leaves the long way round.
        let mut inst = instance();
        inst.restoration_fraction = 0.0;
        let s = solve_arrow(&inst, ArrowVariant::OpenSource, &RevisedSimplex::default()).unwrap();
        assert!(s.committed > 0.0);
    }

    #[test]
    fn more_restoration_never_hurts() {
        let mut inst = instance();
        inst.restoration_fraction = 0.0;
        let low = solve_arrow(&inst, ArrowVariant::OpenSource, &RevisedSimplex::default()).unwrap();
        inst.restoration_fraction = 1.0;
        let high = solve_arrow(&inst, ArrowVariant::OpenSource, &RevisedSimplex::default()).unwrap();
        assert!(high.committed >= low.committed - 1e-6);
    }

    #[test]
    fn non_bridge_scenarios_avoid_bridges() {
        // A barbell: the middle fiber is a bridge and must never be cut.
        let mut graph = netrepro_graph::DiGraph::new();
        let ns = graph.add_nodes("n", 6);
        graph.add_bidi(ns[0], ns[1], 10.0, 1.0);
        graph.add_bidi(ns[1], ns[2], 10.0, 1.0);
        graph.add_bidi(ns[2], ns[0], 10.0, 1.0);
        graph.add_bidi(ns[3], ns[4], 10.0, 1.0);
        graph.add_bidi(ns[4], ns[5], 10.0, 1.0);
        graph.add_bidi(ns[5], ns[3], 10.0, 1.0);
        let bridge = graph.add_bidi(ns[2], ns[3], 100.0, 1.0); // juiciest capacity
        let mut tm = netrepro_graph::traffic::TrafficMatrix::zeros(6);
        tm.set(ns[0], ns[5], 5.0);
        let te = TeInstance { name: "bar".into(), graph, tm, paths_per_commodity: 2, max_commodities: 4 };
        let scenarios = non_bridge_scenarios(&te, 2, 2);
        for s in &scenarios {
            assert!(!s.cut.contains(&bridge.0) && !s.cut.contains(&bridge.1));
        }
    }

    #[test]
    fn single_fiber_scenarios_pick_distinct_fibers() {
        let inst = instance();
        let g = &inst.te.graph;
        let mut seen = std::collections::HashSet::new();
        for s in &inst.scenarios {
            assert_eq!(s.cut.len(), 1);
            let (a, b) = g.endpoints(s.cut[0]);
            assert!(seen.insert((a.min(b), a.max(b))), "duplicate fiber");
        }
    }
}
