//! NCFlow (Abuzaid et al., NSDI 2021): solving flow problems quickly by
//! contracting the topology.
//!
//! The pipeline mirrors the published decomposition:
//!
//! 1. **Partition** the WAN into `k` clusters
//!    ([`netrepro_graph::partition`]).
//! 2. **R1** — solve the flat MCF on the *contracted* graph (one node
//!    per cluster, one edge per adjacent cluster pair whose capacity is
//!    the sum of its cut edges). This allocates every inter-cluster
//!    commodity to cluster-level paths.
//! 3. **R2** — for every cluster, solve a *local* MCF over the induced
//!    subgraph plus portal nodes standing for the neighbouring
//!    clusters; transit demands equal the R1 allocations. Clusters are
//!    independent and solved in parallel (std scoped threads).
//! 4. **R3** — reconcile: each inter-cluster commodity realises the
//!    minimum of its R1 allocation and its R2 admissions along the
//!    cluster path; intra-cluster commodities realise their R2
//!    admission directly.
//!
//! As in the original system, the reconciled objective is a lower bound
//! on the flat-LP optimum; the point of the exercise is that R1+R2 are
//! much smaller LPs than the flat formulation.

use crate::mcf::{build_tunnels, solve_mcf_with_tunnels, McfSolution, TeInstance, TunnelSet};
use crate::TeError;
use netrepro_graph::partition::{partition, Partition};
use netrepro_graph::{DiGraph, NodeId, TrafficMatrix};
use netrepro_lp::LpSolver;
use std::time::{Duration, Instant};

/// NCFlow configuration.
#[derive(Debug, Clone)]
pub struct NcFlowConfig {
    /// Number of clusters (NCFlow uses ≈√N).
    pub num_clusters: usize,
    /// Tunnels per commodity in R1 and R2.
    pub paths_per_commodity: usize,
    /// Solve R2 cluster problems on parallel threads.
    pub parallel_r2: bool,
}

impl NcFlowConfig {
    /// The paper's default: `√N` clusters, 4 paths.
    pub fn for_instance(inst: &TeInstance) -> Self {
        NcFlowConfig {
            num_clusters: (inst.graph.num_nodes() as f64).sqrt().round().max(2.0) as usize,
            paths_per_commodity: inst.paths_per_commodity,
            parallel_r2: true,
        }
    }
}

/// An NCFlow run's outcome and phase timings.
#[derive(Debug, Clone)]
pub struct NcfSolution {
    /// Total realised flow after reconciliation.
    pub total_flow: f64,
    /// Wall-clock for the whole pipeline.
    pub solve_time: Duration,
    /// R1 (contracted LP) time.
    pub r1_time: Duration,
    /// R2 (per-cluster LPs) time, wall-clock.
    pub r2_time: Duration,
    /// Number of clusters used.
    pub num_clusters: usize,
    /// Sum of LP pivots across R1 and R2.
    pub lp_iterations: u64,
}

/// Solve `inst` with the NCFlow decomposition.
pub fn solve_ncflow(
    inst: &TeInstance,
    cfg: &NcFlowConfig,
    solver: &(dyn LpSolver + Sync),
) -> Result<NcfSolution, TeError> {
    let start = Instant::now();
    let part = partition(&inst.graph, cfg.num_clusters);
    let k = part.k();
    let commodities = inst.commodities();

    // Split commodities by whether they cross clusters.
    let mut intra: Vec<(usize, NodeId, NodeId, f64)> = Vec::new(); // (cluster, s, d, demand)
    let mut inter: Vec<(NodeId, NodeId, f64)> = Vec::new();
    for &(s, d, dem) in &commodities {
        let (cs, cd) = (part.cluster(s), part.cluster(d));
        if cs == cd {
            intra.push((cs, s, d, dem));
        } else {
            inter.push((s, d, dem));
        }
    }

    // ---- R1: contracted LP over clusters. ----
    let r1_start = Instant::now();
    let contracted = contract(&inst.graph, &part);
    let mut agg_tm = TrafficMatrix::zeros(k);
    for &(s, d, dem) in &inter {
        let (cs, cd) = (part.cluster(s), part.cluster(d));
        let cur = agg_tm.get(NodeId(cs as u32), NodeId(cd as u32));
        agg_tm.set(NodeId(cs as u32), NodeId(cd as u32), cur + dem);
    }
    let agg_commodities = agg_tm.commodities();
    let agg_inst = TeInstance {
        name: format!("{}-contracted", inst.name),
        graph: contracted.graph.clone(),
        tm: agg_tm,
        paths_per_commodity: cfg.paths_per_commodity,
        max_commodities: usize::MAX,
    };
    let (r1, agg_tunnels): (McfSolution, TunnelSet) = if agg_commodities.is_empty() {
        (
            McfSolution {
                total_flow: 0.0,
                concurrency: None,
                per_commodity: Vec::new(),
                per_path: Vec::new(),
                solve_time: Duration::ZERO,
                lp_iterations: 0,
            },
            TunnelSet { tunnels: Vec::new() },
        )
    } else {
        let tunnels = build_tunnels(&agg_inst.graph, &agg_commodities, cfg.paths_per_commodity);
        let sol = solve_mcf_with_tunnels(&agg_inst, &agg_commodities, &tunnels, solver, Instant::now())?;
        (sol, tunnels)
    };
    let r1_time = r1_start.elapsed();

    // Transit demands per cluster: (cluster, from_cluster?, to_cluster?, amount, key)
    // key identifies the (agg commodity, agg path) pair for R3.
    #[derive(Debug, Clone)]
    struct Transit {
        cluster: usize,
        enter_from: Option<usize>, // None => commodity originates here
        exit_to: Option<usize>,    // None => commodity terminates here
        src: NodeId,               // real endpoints (for origin/terminus)
        dst: NodeId,
        amount: f64,
        key: (usize, usize),
    }
    let mut transits: Vec<Transit> = Vec::new();
    for (ci, paths) in agg_tunnels.tunnels.iter().enumerate() {
        let (acs, acd, _) = agg_commodities[ci];
        // Real endpoints: aggregate commodities bundle several real ones;
        // we spread the allocation over the member commodities in
        // proportion to demand (NCFlow does the same within clusters).
        for (pi, path) in paths.iter().enumerate() {
            let alloc = r1.per_path[ci][pi];
            if alloc <= 1e-9 {
                continue;
            }
            let cluster_seq: Vec<usize> =
                path.nodes(&contracted.graph).iter().map(|n| n.index()).collect();
            debug_assert_eq!(cluster_seq.first(), Some(&acs.index()));
            debug_assert_eq!(cluster_seq.last(), Some(&acd.index()));
            for (hop, &c) in cluster_seq.iter().enumerate() {
                transits.push(Transit {
                    cluster: c,
                    enter_from: if hop == 0 { None } else { Some(cluster_seq[hop - 1]) },
                    exit_to: if hop + 1 == cluster_seq.len() {
                        None
                    } else {
                        Some(cluster_seq[hop + 1])
                    },
                    src: member_source(&inter, &part, acs.index()),
                    dst: member_sink(&inter, &part, acd.index()),
                    amount: alloc,
                    key: (ci, pi),
                });
            }
        }
    }

    // ---- R2: per-cluster local LPs. ----
    let r2_start = Instant::now();
    type ClusterInput = (Vec<(usize, NodeId, NodeId, f64)>, Vec<Transit>);
    let mut cluster_inputs: Vec<ClusterInput> =
        (0..k).map(|_| (Vec::new(), Vec::new())).collect();
    for t in &intra {
        cluster_inputs[t.0].0.push(*t);
    }
    for t in &transits {
        cluster_inputs[t.cluster].1.push(t.clone());
    }

    // Each cluster solve returns (intra admissions, per-transit-key admissions, iterations).
    type R2Out = (Vec<f64>, Vec<((usize, usize), f64)>, u64);
    let solve_cluster = |c: usize| -> Result<R2Out, TeError> {
        let (ref intra_c, ref transit_c) = cluster_inputs[c];
        if intra_c.is_empty() && transit_c.is_empty() {
            return Ok((Vec::new(), Vec::new(), 0));
        }
        let local = LocalProblem::build(&inst.graph, &part, c, transit_c.iter().map(|t| {
            (t.enter_from, t.exit_to, t.src, t.dst, t.amount, t.key)
        }).collect(), intra_c);
        local.solve(cfg.paths_per_commodity, solver)
    };

    let r2_results: Vec<Result<R2Out, TeError>> = if cfg.parallel_r2 {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..k)
                .map(|c| {
                    let solve_cluster = &solve_cluster;
                    scope.spawn(move || solve_cluster(c))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        })
    } else {
        (0..k).map(solve_cluster).collect()
    };
    let r2_time = r2_start.elapsed();

    // ---- R3: reconcile. ----
    let mut total = 0.0;
    let mut iterations = r1.lp_iterations;
    // Per (agg commodity, path) key: min admission across clusters.
    // A BTreeMap, not a HashMap: the values are summed below, and f64
    // addition order must not depend on RandomState.
    let mut key_min: std::collections::BTreeMap<(usize, usize), f64> =
        std::collections::BTreeMap::new();
    for (ci, paths) in agg_tunnels.tunnels.iter().enumerate() {
        for (pi, _) in paths.iter().enumerate() {
            if r1.per_path[ci][pi] > 1e-9 {
                key_min.insert((ci, pi), r1.per_path[ci][pi]);
            }
        }
    }
    for r in r2_results {
        let (intra_adm, transit_adm, iters) = r?;
        iterations += iters;
        total += intra_adm.iter().sum::<f64>();
        for (key, adm) in transit_adm {
            key_min
                .entry(key)
                .and_modify(|m| *m = m.min(adm))
                .or_insert(adm);
        }
    }
    total += key_min.values().sum::<f64>();

    Ok(NcfSolution {
        total_flow: total,
        solve_time: start.elapsed(),
        r1_time,
        r2_time,
        num_clusters: k,
        lp_iterations: iterations,
    })
}

/// Representative real source inside a cluster for an aggregate
/// commodity (the highest-demand member; used to anchor local tunnels).
fn member_source(inter: &[(NodeId, NodeId, f64)], part: &Partition, cluster: usize) -> NodeId {
    inter
        .iter()
        .filter(|(s, _, _)| part.cluster(*s) == cluster)
        .max_by(|a, b| a.2.total_cmp(&b.2))
        .map(|&(s, _, _)| s)
        .unwrap_or_else(|| part.members[cluster][0])
}

fn member_sink(inter: &[(NodeId, NodeId, f64)], part: &Partition, cluster: usize) -> NodeId {
    inter
        .iter()
        .filter(|(_, d, _)| part.cluster(*d) == cluster)
        .max_by(|a, b| a.2.total_cmp(&b.2))
        .map(|&(_, d, _)| d)
        .unwrap_or_else(|| part.members[cluster][0])
}

/// The contracted graph plus bookkeeping.
struct Contracted {
    graph: DiGraph,
}

/// One contracted node per cluster; one edge per ordered adjacent
/// cluster pair with capacity = sum of its cut-edge capacities.
fn contract(g: &DiGraph, part: &Partition) -> Contracted {
    let mut cg = DiGraph::new();
    let nodes = cg.add_nodes("cluster", part.k());
    // Ordered map: edges must be added in a run-independent order.
    let mut caps: std::collections::BTreeMap<(usize, usize), f64> =
        std::collections::BTreeMap::new();
    for e in g.edges() {
        let (s, d) = g.endpoints(e);
        let (cs, cd) = (part.cluster(s), part.cluster(d));
        if cs != cd {
            *caps.entry((cs, cd)).or_insert(0.0) += g.capacity(e);
        }
    }
    for ((cs, cd), cap) in caps {
        cg.add_edge(nodes[cs], nodes[cd], cap, 1.0);
    }
    Contracted { graph: cg }
}

/// What a cluster-local solve returns: intra admissions, per-key
/// transit admissions, and LP pivot count.
type LocalSolveOutput = (Vec<f64>, Vec<((usize, usize), f64)>, u64);

/// A cluster-local MCF: the induced subgraph plus portal nodes.
struct LocalProblem {
    graph: DiGraph,
    /// (src, dst, demand) in local node ids.
    commodities: Vec<(NodeId, NodeId, f64)>,
    /// Which commodity indexes are transit, with their R3 keys.
    transit_keys: Vec<(usize, (usize, usize))>,
    /// How many commodities are intra.
    num_intra: usize,
}

impl LocalProblem {
    #[allow(clippy::type_complexity)]
    fn build(
        g: &DiGraph,
        part: &Partition,
        cluster: usize,
        transits: Vec<(Option<usize>, Option<usize>, NodeId, NodeId, f64, (usize, usize))>,
        intra: &[(usize, NodeId, NodeId, f64)],
    ) -> Self {
        let mut lg = DiGraph::new();
        let mut map: std::collections::HashMap<NodeId, NodeId> = std::collections::HashMap::new();
        for &n in &part.members[cluster] {
            let ln = lg.add_node(g.node_name(n));
            map.insert(n, ln);
        }
        // Internal edges.
        for e in g.edges() {
            let (s, d) = g.endpoints(e);
            if part.cluster(s) == cluster && part.cluster(d) == cluster {
                lg.add_edge(map[&s], map[&d], g.capacity(e), g.weight(e));
            }
        }
        // Portals: one per neighbouring cluster, with per-cut-edge arcs.
        let mut portals: std::collections::HashMap<usize, NodeId> = std::collections::HashMap::new();
        for e in g.edges() {
            let (s, d) = g.endpoints(e);
            let (cs, cd) = (part.cluster(s), part.cluster(d));
            if cs != cluster && cd == cluster {
                // entry cut edge: portal(cs) -> d
                let p = *portals
                    .entry(cs)
                    .or_insert_with(|| lg.add_node(&format!("portal{cs}")));
                lg.add_edge(p, map[&d], g.capacity(e), g.weight(e));
            } else if cs == cluster && cd != cluster {
                let p = *portals
                    .entry(cd)
                    .or_insert_with(|| lg.add_node(&format!("portal{cd}")));
                lg.add_edge(map[&s], p, g.capacity(e), g.weight(e));
            }
        }

        let mut commodities: Vec<(NodeId, NodeId, f64)> = Vec::new();
        let num_intra = intra.len();
        for &(_, s, d, dem) in intra {
            commodities.push((map[&s], map[&d], dem));
        }
        let mut transit_keys = Vec::new();
        for (enter, exit, src, dst, amount, key) in transits {
            let from = match enter {
                Some(c) => match portals.get(&c) {
                    Some(&p) => p,
                    None => continue, // no cut edges materialised; skip
                },
                None => map[&src],
            };
            let to = match exit {
                Some(c) => match portals.get(&c) {
                    Some(&p) => p,
                    None => continue,
                },
                None => map[&dst],
            };
            if from == to {
                continue;
            }
            transit_keys.push((commodities.len(), key));
            commodities.push((from, to, amount));
        }
        LocalProblem { graph: lg, commodities, transit_keys, num_intra }
    }

    /// Solve; returns (intra admissions, per-key transit admissions,
    /// pivots).
    fn solve(
        &self,
        paths_per_commodity: usize,
        solver: &dyn LpSolver,
    ) -> Result<LocalSolveOutput, TeError> {
        if self.commodities.is_empty() {
            return Ok((Vec::new(), Vec::new(), 0));
        }
        let mut tm = TrafficMatrix::zeros(self.graph.num_nodes());
        // We can't push parallel commodities into a TrafficMatrix (same
        // (s,d) pairs merge), so we call the tunnel/LP layer directly.
        let _ = &mut tm;
        let inst = TeInstance {
            name: "local".into(),
            graph: self.graph.clone(),
            tm: TrafficMatrix::zeros(self.graph.num_nodes()),
            paths_per_commodity,
            max_commodities: usize::MAX,
        };
        // Commodities with no local path are skipped (admission 0).
        // The kept tunnels are moved out of `tunnels_all`, not cloned:
        // this runs once per cluster per R2 solve.
        let tunnels_all = build_tunnels(&self.graph, &self.commodities, paths_per_commodity);
        let mut kept: Vec<(NodeId, NodeId, f64)> = Vec::new();
        let mut kept_idx: Vec<usize> = Vec::new();
        let mut kept_tunnels = Vec::with_capacity(tunnels_all.tunnels.len());
        for (i, t) in tunnels_all.tunnels.into_iter().enumerate() {
            if !t.is_empty() {
                kept.push(self.commodities[i]);
                kept_idx.push(i);
                kept_tunnels.push(t);
            }
        }
        if kept.is_empty() {
            return Ok((vec![0.0; self.num_intra], Vec::new(), 0));
        }
        let tunnels = TunnelSet { tunnels: kept_tunnels };
        let sol = solve_mcf_with_tunnels(&inst, &kept, &tunnels, solver, Instant::now())?;
        // Scatter admissions back to original commodity indexes.
        let mut adm = vec![0.0; self.commodities.len()];
        for (ki, &i) in kept_idx.iter().enumerate() {
            adm[i] = sol.per_commodity[ki];
        }
        let intra_adm = adm[..self.num_intra].to_vec();
        let transit_adm = self
            .transit_keys
            .iter()
            .map(|&(idx, key)| (key, adm[idx]))
            .collect();
        Ok((intra_adm, transit_adm, sol.lp_iterations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcf::solve_mcf;
    use netrepro_graph::gen::{waxman, TopologySpec};
    use netrepro_graph::traffic;
    use netrepro_lp::revised::RevisedSimplex;

    fn instance(nodes: usize, seed: u64, commodities: usize) -> TeInstance {
        let graph = waxman(&TopologySpec::new("t", nodes, seed));
        let tm = traffic::gravity(&graph, nodes as f64 * 40.0, seed + 1);
        TeInstance {
            name: "t".into(),
            graph,
            tm,
            paths_per_commodity: 4,
            max_commodities: commodities,
        }
    }

    #[test]
    fn ncflow_never_exceeds_flat_lp() {
        let inst = instance(24, 3, 20);
        let flat = solve_mcf(&inst, &RevisedSimplex::default()).unwrap();
        let cfg = NcFlowConfig { num_clusters: 4, paths_per_commodity: 4, parallel_r2: false };
        let ncf = solve_ncflow(&inst, &cfg, &RevisedSimplex::default()).unwrap();
        assert!(
            ncf.total_flow <= flat.total_flow + 1e-4,
            "ncflow {} > flat {}",
            ncf.total_flow,
            flat.total_flow
        );
    }

    #[test]
    fn ncflow_achieves_reasonable_fraction() {
        let inst = instance(24, 3, 20);
        let flat = solve_mcf(&inst, &RevisedSimplex::default()).unwrap();
        let cfg = NcFlowConfig { num_clusters: 4, paths_per_commodity: 4, parallel_r2: false };
        let ncf = solve_ncflow(&inst, &cfg, &RevisedSimplex::default()).unwrap();
        assert!(
            ncf.total_flow >= 0.5 * flat.total_flow,
            "ncflow {} too far below flat {}",
            ncf.total_flow,
            flat.total_flow
        );
    }

    #[test]
    fn parallel_and_serial_r2_agree() {
        let inst = instance(20, 5, 15);
        let base = NcFlowConfig { num_clusters: 4, paths_per_commodity: 3, parallel_r2: false };
        let par = NcFlowConfig { parallel_r2: true, ..base.clone() };
        let a = solve_ncflow(&inst, &base, &RevisedSimplex::default()).unwrap();
        let b = solve_ncflow(&inst, &par, &RevisedSimplex::default()).unwrap();
        assert!((a.total_flow - b.total_flow).abs() < 1e-6);
    }

    #[test]
    fn single_cluster_degenerates_to_flat() {
        let inst = instance(12, 7, 10);
        let cfg = NcFlowConfig { num_clusters: 1, paths_per_commodity: 4, parallel_r2: false };
        let ncf = solve_ncflow(&inst, &cfg, &RevisedSimplex::default()).unwrap();
        let flat = solve_mcf(&inst, &RevisedSimplex::default()).unwrap();
        // With one cluster everything is intra: identical formulations.
        assert!((ncf.total_flow - flat.total_flow).abs() < 1e-5);
    }

    #[test]
    fn intra_only_traffic() {
        // All demand between neighbours: heavy intra component.
        let graph = netrepro_graph::gen::ring(8, 10.0);
        let mut tm = TrafficMatrix::zeros(8);
        tm.set(NodeId(0), NodeId(1), 5.0);
        tm.set(NodeId(4), NodeId(5), 5.0);
        let inst = TeInstance { name: "r".into(), graph, tm, paths_per_commodity: 2, max_commodities: 10 };
        let cfg = NcFlowConfig { num_clusters: 2, paths_per_commodity: 2, parallel_r2: false };
        let ncf = solve_ncflow(&inst, &cfg, &RevisedSimplex::default()).unwrap();
        assert!(ncf.total_flow >= 9.9, "got {}", ncf.total_flow);
    }

    #[test]
    fn reports_phase_timings() {
        let inst = instance(16, 9, 10);
        let cfg = NcFlowConfig::for_instance(&inst);
        let ncf = solve_ncflow(&inst, &cfg, &RevisedSimplex::default()).unwrap();
        assert!(ncf.num_clusters >= 2);
        assert!(ncf.solve_time >= ncf.r1_time);
    }
}
