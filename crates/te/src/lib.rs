//! `netrepro-te` — traffic engineering: NCFlow (Abuzaid et al., NSDI
//! 2021, participant A's system) and ARROW (Zhong et al., SIGCOMM 2021,
//! participant B's system), plus the flat multicommodity-flow LP they
//! both build on and a greedy baseline.
//!
//! Everything solves through the [`netrepro_lp`] crate, so every
//! algorithm here can run on either the fast (revised-simplex /
//! "Gurobi") or slow (dense-tableau / "PuLP") solver — the pairing whose
//! latency gap Table A reproduces.
//!
//! ARROW ships in two deliberately different formulations,
//! [`arrow::ArrowVariant::Faithful`] (what the paper text says) and
//! [`arrow::ArrowVariant::OpenSource`] (what the released Julia code
//! does), because the HotNets paper traces participant B's 30% objective
//! discrepancy to exactly that inconsistency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrow;
pub mod baseline;
pub mod mcf;
pub mod ncflow;

pub use mcf::{McfSolution, TeInstance};

/// Errors from the TE pipelines.
#[derive(Debug)]
pub enum TeError {
    /// The underlying LP solve failed.
    Lp(netrepro_lp::LpError),
    /// The LP reported an unexpected terminal status.
    UnexpectedStatus(netrepro_lp::Status),
    /// No tunnels could be found for a commodity.
    NoTunnels {
        /// Source node.
        src: netrepro_graph::NodeId,
        /// Destination node.
        dst: netrepro_graph::NodeId,
    },
}

impl std::fmt::Display for TeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TeError::Lp(e) => write!(f, "LP failure: {e}"),
            TeError::UnexpectedStatus(s) => write!(f, "unexpected LP status {s:?}"),
            TeError::NoTunnels { src, dst } => {
                write!(f, "no tunnels between {src:?} and {dst:?}")
            }
        }
    }
}

impl std::error::Error for TeError {}

impl From<netrepro_lp::LpError> for TeError {
    fn from(e: netrepro_lp::LpError) -> Self {
        TeError::Lp(e)
    }
}
