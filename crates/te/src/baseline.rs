//! A greedy shortest-path baseline ("SP water-filling").
//!
//! Routes commodities in descending-demand order along the currently
//! least-loaded shortest path and admits whatever the bottleneck allows.
//! This is the kind of baseline the NCFlow evaluation compares against;
//! the bench harness reports its gap to the LP optimum.

use crate::mcf::TeInstance;
use netrepro_graph::paths::dijkstra_path;
use netrepro_graph::DiGraph;
use std::time::{Duration, Instant};

/// Result of the greedy baseline.
#[derive(Debug, Clone)]
pub struct GreedySolution {
    /// Total admitted flow.
    pub total_flow: f64,
    /// Admitted flow per commodity (descending-demand order).
    pub per_commodity: Vec<f64>,
    /// Wall-clock time.
    pub solve_time: Duration,
}

/// Run the greedy baseline on `inst`.
pub fn solve_greedy(inst: &TeInstance) -> GreedySolution {
    let start = Instant::now();
    let mut residual: DiGraph = inst.graph.clone();
    let commodities = inst.commodities();
    let no_nodes = vec![false; residual.num_nodes()];
    let mut per_commodity = Vec::with_capacity(commodities.len());
    for &(s, d, demand) in &commodities {
        let mut admitted = 0.0;
        // Keep routing this commodity while capacity and demand remain.
        loop {
            let banned_edges: Vec<bool> =
                residual.edges().map(|e| residual.capacity(e) <= 1e-9).collect();
            let Some(path) = dijkstra_path(&residual, s, d, &no_nodes, &banned_edges) else {
                break;
            };
            let room = path.bottleneck(&residual);
            let take = room.min(demand - admitted);
            if take <= 1e-9 {
                break;
            }
            for &e in &path.edges {
                residual.set_capacity(e, residual.capacity(e) - take);
            }
            admitted += take;
            if demand - admitted <= 1e-9 {
                break;
            }
        }
        per_commodity.push(admitted);
    }
    GreedySolution {
        total_flow: per_commodity.iter().sum(),
        per_commodity,
        solve_time: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcf::solve_mcf;
    use netrepro_graph::gen::ring;
    use netrepro_graph::traffic::{self, TrafficMatrix};
    use netrepro_graph::NodeId;
    use netrepro_lp::revised::RevisedSimplex;

    #[test]
    fn greedy_fills_single_commodity() {
        let graph = ring(6, 10.0);
        let mut tm = TrafficMatrix::zeros(6);
        tm.set(NodeId(0), NodeId(3), 100.0);
        let inst = TeInstance { name: "r".into(), graph, tm, paths_per_commodity: 4, max_commodities: 4 };
        let g = solve_greedy(&inst);
        // Greedy reroutes until saturation: both ring arcs -> 20.
        assert!((g.total_flow - 20.0).abs() < 1e-6, "got {}", g.total_flow);
    }

    #[test]
    fn greedy_never_beats_lp() {
        let graph = netrepro_graph::gen::waxman(&netrepro_graph::gen::TopologySpec::new("t", 20, 4));
        let tm = traffic::gravity(&graph, 600.0, 5);
        let inst = TeInstance { name: "t".into(), graph, tm, paths_per_commodity: 4, max_commodities: 15 };
        let g = solve_greedy(&inst);
        let lp = solve_mcf(&inst, &RevisedSimplex::default()).unwrap();
        assert!(g.total_flow <= lp.total_flow + 1e-4);
    }

    #[test]
    fn greedy_respects_demand() {
        let graph = ring(5, 10.0);
        let mut tm = TrafficMatrix::zeros(5);
        tm.set(NodeId(0), NodeId(2), 3.0);
        let inst = TeInstance { name: "r".into(), graph, tm, paths_per_commodity: 2, max_commodities: 4 };
        let g = solve_greedy(&inst);
        assert!((g.total_flow - 3.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_on_empty_tm() {
        let graph = ring(4, 10.0);
        let tm = TrafficMatrix::zeros(4);
        let inst = TeInstance { name: "r".into(), graph, tm, paths_per_commodity: 2, max_commodities: 4 };
        let g = solve_greedy(&inst);
        assert_eq!(g.total_flow, 0.0);
        assert!(g.per_commodity.is_empty());
    }
}
