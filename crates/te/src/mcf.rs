//! The flat path-based multicommodity-flow LP ("PF", the formulation
//! NCFlow contracts and ARROW extends).
//!
//! Variables: one flow variable per (commodity, tunnel). Constraints:
//! per-commodity demand caps and per-edge capacity caps. Objective:
//! maximise total admitted flow — NCFlow's objective.

use crate::TeError;
use netrepro_graph::paths::{k_shortest_paths, Path};
use netrepro_graph::{DiGraph, NodeId, TrafficMatrix};
use netrepro_lp::{LpSolver, Problem, Sense, Status, VarId};
use std::time::Instant;

/// A TE problem instance: topology, demands and tunnel budget.
#[derive(Debug, Clone)]
pub struct TeInstance {
    /// Instance display name (the stand-in WAN).
    pub name: String,
    /// The topology.
    pub graph: DiGraph,
    /// The demand matrix.
    pub tm: TrafficMatrix,
    /// Tunnels (k-shortest paths) per commodity.
    pub paths_per_commodity: usize,
    /// Only the `max_commodities` largest demands are engineered
    /// (mirrors how the original evaluations subsample demand matrices).
    pub max_commodities: usize,
}

impl TeInstance {
    /// The engineered commodities: the largest demands first, at most
    /// `max_commodities` of them.
    pub fn commodities(&self) -> Vec<(NodeId, NodeId, f64)> {
        let mut all = self.tm.commodities();
        all.sort_by(|a, b| b.2.total_cmp(&a.2));
        all.truncate(self.max_commodities);
        all
    }

    /// Total engineered demand.
    pub fn total_demand(&self) -> f64 {
        self.commodities().iter().map(|c| c.2).sum()
    }
}

/// Which objective the LP maximises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum McfObjective {
    /// Maximise total admitted flow (NCFlow's objective).
    #[default]
    TotalFlow,
    /// Maximise the common served fraction `t` with every commodity
    /// guaranteed `t · demand` (max-concurrent flow — fairness).
    MaxConcurrent,
}

/// A solved MCF: objective, per-commodity admitted flow, timings.
#[derive(Debug, Clone)]
pub struct McfSolution {
    /// Total admitted flow (the objective value).
    pub total_flow: f64,
    /// Common served fraction (only for [`McfObjective::MaxConcurrent`]).
    pub concurrency: Option<f64>,
    /// Admitted flow per engineered commodity, same order as
    /// [`TeInstance::commodities`].
    pub per_commodity: Vec<f64>,
    /// Admitted flow per (commodity, tunnel), same shapes as the tunnel
    /// set used by the solve.
    pub per_path: Vec<Vec<f64>>,
    /// Wall-clock solve time (model build + LP).
    pub solve_time: std::time::Duration,
    /// LP pivots.
    pub lp_iterations: u64,
}

/// Per-commodity tunnels used by a solve, exposed for inspection.
#[derive(Debug, Clone)]
pub struct TunnelSet {
    /// `tunnels[i]` are the paths of commodity `i`.
    pub tunnels: Vec<Vec<Path>>,
}

/// Compute the k-shortest-path tunnels for each commodity.
pub fn build_tunnels(
    graph: &DiGraph,
    commodities: &[(NodeId, NodeId, f64)],
    k: usize,
) -> TunnelSet {
    let tunnels = commodities
        .iter()
        .map(|&(s, d, _)| k_shortest_paths(graph, s, d, k))
        .collect();
    TunnelSet { tunnels }
}

/// Solve the flat MCF (total-flow objective) with the given LP solver.
pub fn solve_mcf(inst: &TeInstance, solver: &dyn LpSolver) -> Result<McfSolution, TeError> {
    let start = Instant::now();
    let commodities = inst.commodities();
    let tunnels = build_tunnels(&inst.graph, &commodities, inst.paths_per_commodity);
    solve_mcf_with_tunnels(inst, &commodities, &tunnels, solver, start)
}

/// Solve the flat MCF under an explicit objective.
pub fn solve_mcf_with_objective(
    inst: &TeInstance,
    objective: McfObjective,
    solver: &dyn LpSolver,
) -> Result<McfSolution, TeError> {
    match objective {
        McfObjective::TotalFlow => solve_mcf(inst, solver),
        McfObjective::MaxConcurrent => solve_max_concurrent(inst, solver),
    }
}

/// Max-concurrent flow: maximise `t` such that every engineered
/// commodity is served at least `t · demand` within edge capacities
/// (`t` is capped at 1 — fully served).
fn solve_max_concurrent(inst: &TeInstance, solver: &dyn LpSolver) -> Result<McfSolution, TeError> {
    let start = Instant::now();
    let commodities = inst.commodities();
    let tunnels = build_tunnels(&inst.graph, &commodities, inst.paths_per_commodity);

    let mut p = Problem::new(Sense::Maximize);
    let t_var = p.add_var("t", 0.0, 1.0, 1.0);
    let mut vars: Vec<Vec<VarId>> = Vec::with_capacity(commodities.len());
    for (ci, &(src, dst, demand)) in commodities.iter().enumerate() {
        let paths = &tunnels.tunnels[ci];
        if paths.is_empty() {
            return Err(TeError::NoTunnels { src, dst });
        }
        let vs: Vec<VarId> = paths
            .iter()
            .enumerate()
            .map(|(pi, _)| p.add_var(&format!("f_{ci}_{pi}"), 0.0, f64::INFINITY, 0.0))
            .collect();
        // Demand cap and the concurrency floor: Σx >= t·demand.
        let row: Vec<_> = vs.iter().map(|&v| (v, 1.0)).collect();
        p.add_le(&row, demand);
        let mut floor: Vec<(VarId, f64)> = vec![(t_var, demand)];
        floor.extend(vs.iter().map(|&v| (v, -1.0)));
        p.add_le(&floor, 0.0); // t·demand − Σx <= 0
        vars.push(vs);
    }
    let mut edge_rows: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); inst.graph.num_edges()];
    for (ci, paths) in tunnels.tunnels.iter().enumerate() {
        for (pi, path) in paths.iter().enumerate() {
            for &e in &path.edges {
                edge_rows[e.index()].push((vars[ci][pi], 1.0));
            }
        }
    }
    for (ei, row) in edge_rows.iter().enumerate() {
        if !row.is_empty() {
            p.add_le(row, inst.graph.capacity(netrepro_graph::EdgeId(ei as u32)));
        }
    }

    let sol = solver.solve(&p)?;
    if sol.status != Status::Optimal {
        return Err(TeError::UnexpectedStatus(sol.status));
    }
    let per_path: Vec<Vec<f64>> =
        vars.iter().map(|vs| vs.iter().map(|&v| sol.value(v)).collect()).collect();
    let per_commodity: Vec<f64> = per_path.iter().map(|vs| vs.iter().sum()).collect();
    Ok(McfSolution {
        total_flow: per_commodity.iter().sum(),
        concurrency: Some(sol.value(t_var)),
        per_commodity,
        per_path,
        solve_time: start.elapsed(),
        lp_iterations: sol.iterations,
    })
}

pub(crate) fn solve_mcf_with_tunnels(
    inst: &TeInstance,
    commodities: &[(NodeId, NodeId, f64)],
    tunnels: &TunnelSet,
    solver: &dyn LpSolver,
    start: Instant,
) -> Result<McfSolution, TeError> {
    let mut p = Problem::new(Sense::Maximize);
    // Flow variable per (commodity, tunnel).
    let mut vars: Vec<Vec<VarId>> = Vec::with_capacity(commodities.len());
    for (ci, &(src, dst, demand)) in commodities.iter().enumerate() {
        let paths = &tunnels.tunnels[ci];
        if paths.is_empty() {
            return Err(TeError::NoTunnels { src, dst });
        }
        let vs: Vec<VarId> = paths
            .iter()
            .enumerate()
            .map(|(pi, _)| p.add_var(&format!("f_{ci}_{pi}"), 0.0, f64::INFINITY, 1.0))
            .collect();
        // Demand cap.
        let row: Vec<_> = vs.iter().map(|&v| (v, 1.0)).collect();
        p.add_le(&row, demand);
        vars.push(vs);
    }
    // Edge capacity caps.
    let mut edge_rows: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); inst.graph.num_edges()];
    for (ci, paths) in tunnels.tunnels.iter().enumerate() {
        for (pi, path) in paths.iter().enumerate() {
            for &e in &path.edges {
                edge_rows[e.index()].push((vars[ci][pi], 1.0));
            }
        }
    }
    for (ei, row) in edge_rows.iter().enumerate() {
        if !row.is_empty() {
            p.add_le(row, inst.graph.capacity(netrepro_graph::EdgeId(ei as u32)));
        }
    }

    let sol = solver.solve(&p)?;
    if sol.status != Status::Optimal {
        return Err(TeError::UnexpectedStatus(sol.status));
    }
    let per_path: Vec<Vec<f64>> = vars
        .iter()
        .map(|vs| vs.iter().map(|&v| sol.value(v)).collect())
        .collect();
    let per_commodity: Vec<f64> = per_path.iter().map(|vs| vs.iter().sum()).collect();
    Ok(McfSolution {
        total_flow: sol.objective,
        concurrency: None,
        per_commodity,
        per_path,
        solve_time: start.elapsed(),
        lp_iterations: sol.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrepro_graph::gen::ring;
    use netrepro_graph::maxflow::max_flow_value;
    use netrepro_graph::traffic::{self, TrafficMatrix};
    use netrepro_lp::dense::DenseSimplex;
    use netrepro_lp::revised::RevisedSimplex;

    fn single_commodity_instance() -> TeInstance {
        let graph = ring(6, 10.0);
        let mut tm = TrafficMatrix::zeros(6);
        tm.set(NodeId(0), NodeId(3), 100.0); // wants more than capacity
        TeInstance { name: "ring".into(), graph, tm, paths_per_commodity: 4, max_commodities: 16 }
    }

    #[test]
    fn single_commodity_matches_maxflow() {
        let inst = single_commodity_instance();
        let sol = solve_mcf(&inst, &RevisedSimplex::default()).unwrap();
        let mf = max_flow_value(&inst.graph, NodeId(0), NodeId(3));
        // Two disjoint ring arcs of 10 each = 20.
        assert!((mf - 20.0).abs() < 1e-9);
        assert!((sol.total_flow - mf).abs() < 1e-6);
    }

    #[test]
    fn flow_capped_by_demand() {
        let mut inst = single_commodity_instance();
        inst.tm = TrafficMatrix::zeros(6);
        inst.tm.set(NodeId(0), NodeId(3), 5.0);
        let sol = solve_mcf(&inst, &RevisedSimplex::default()).unwrap();
        assert!((sol.total_flow - 5.0).abs() < 1e-6);
    }

    #[test]
    fn solvers_agree_on_gravity_instance() {
        let graph = ring(8, 10.0);
        let tm = traffic::gravity(&graph, 120.0, 3);
        let inst = TeInstance {
            name: "g".into(),
            graph,
            tm,
            paths_per_commodity: 3,
            max_commodities: 12,
        };
        let fast = solve_mcf(&inst, &RevisedSimplex::default()).unwrap();
        let slow = solve_mcf(&inst, &DenseSimplex::default()).unwrap();
        assert!(
            (fast.total_flow - slow.total_flow).abs() < 1e-4,
            "fast {} vs slow {}",
            fast.total_flow,
            slow.total_flow
        );
    }

    #[test]
    fn per_commodity_never_exceeds_demand() {
        let graph = ring(8, 10.0);
        let tm = traffic::gravity(&graph, 200.0, 5);
        let inst = TeInstance {
            name: "g".into(),
            graph,
            tm,
            paths_per_commodity: 3,
            max_commodities: 10,
        };
        let commodities = inst.commodities();
        let sol = solve_mcf(&inst, &RevisedSimplex::default()).unwrap();
        for (f, (_, _, d)) in sol.per_commodity.iter().zip(&commodities) {
            assert!(*f <= d + 1e-6);
        }
    }

    #[test]
    fn max_commodities_subsamples_largest() {
        let graph = ring(6, 10.0);
        let mut tm = TrafficMatrix::zeros(6);
        tm.set(NodeId(0), NodeId(1), 1.0);
        tm.set(NodeId(1), NodeId(2), 9.0);
        tm.set(NodeId(2), NodeId(3), 5.0);
        let inst = TeInstance { name: "s".into(), graph, tm, paths_per_commodity: 2, max_commodities: 2 };
        let c = inst.commodities();
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].2, 9.0);
        assert_eq!(c[1].2, 5.0);
    }

    #[test]
    fn no_tunnels_is_an_error() {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let _ = (a, b);
        let mut tm = TrafficMatrix::zeros(2);
        tm.set(NodeId(0), NodeId(1), 1.0);
        let inst = TeInstance { name: "x".into(), graph: g, tm, paths_per_commodity: 2, max_commodities: 4 };
        assert!(matches!(
            solve_mcf(&inst, &RevisedSimplex::default()),
            Err(TeError::NoTunnels { .. })
        ));
    }
}

#[cfg(test)]
mod concurrent_tests {
    use super::*;
    use netrepro_graph::gen::ring;
    use netrepro_graph::traffic::{self, TrafficMatrix};
    use netrepro_lp::revised::RevisedSimplex;

    #[test]
    fn fully_servable_demands_reach_t_one() {
        let graph = ring(6, 100.0);
        let mut tm = TrafficMatrix::zeros(6);
        tm.set(NodeId(0), NodeId(3), 5.0);
        tm.set(NodeId(1), NodeId(4), 5.0);
        let inst = TeInstance { name: "r".into(), graph, tm, paths_per_commodity: 3, max_commodities: 8 };
        let s = solve_mcf_with_objective(&inst, McfObjective::MaxConcurrent, &RevisedSimplex::default()).unwrap();
        assert!((s.concurrency.unwrap() - 1.0).abs() < 1e-6);
        assert!((s.total_flow - 10.0).abs() < 1e-6);
    }

    #[test]
    fn oversubscribed_demands_share_fairly() {
        // One bottleneck edge chain of capacity 10; two commodities of 10 each
        // crossing it: t = 0.5 each.
        let mut graph = netrepro_graph::DiGraph::new();
        let ns = graph.add_nodes("n", 4);
        graph.add_edge(ns[0], ns[1], 100.0, 1.0);
        graph.add_edge(ns[1], ns[2], 10.0, 1.0); // bottleneck
        graph.add_edge(ns[2], ns[3], 100.0, 1.0);
        let mut tm = TrafficMatrix::zeros(4);
        tm.set(ns[0], ns[2], 10.0);
        tm.set(ns[1], ns[3], 10.0);
        let inst = TeInstance { name: "b".into(), graph, tm, paths_per_commodity: 2, max_commodities: 4 };
        let s = solve_mcf_with_objective(&inst, McfObjective::MaxConcurrent, &RevisedSimplex::default()).unwrap();
        assert!((s.concurrency.unwrap() - 0.5).abs() < 1e-6, "t = {:?}", s.concurrency);
        for f in &s.per_commodity {
            assert!(*f >= 5.0 - 1e-6, "every commodity gets its share");
        }
    }

    #[test]
    fn concurrency_guarantee_holds_on_random_instance() {
        let graph = netrepro_graph::gen::waxman(&netrepro_graph::gen::TopologySpec::new("t", 16, 9));
        let tm = traffic::gravity(&graph, 900.0, 10);
        let inst = TeInstance { name: "t".into(), graph, tm, paths_per_commodity: 3, max_commodities: 12 };
        let commodities = inst.commodities();
        let s = solve_mcf_with_objective(&inst, McfObjective::MaxConcurrent, &RevisedSimplex::default()).unwrap();
        let t = s.concurrency.unwrap();
        for (f, (_, _, d)) in s.per_commodity.iter().zip(&commodities) {
            assert!(*f + 1e-6 >= t * d, "floor violated: {f} < {t}*{d}");
        }
    }

    #[test]
    fn max_concurrent_total_not_above_total_flow_optimum() {
        let graph = ring(8, 10.0);
        let tm = traffic::gravity(&graph, 300.0, 2);
        let inst = TeInstance { name: "r".into(), graph, tm, paths_per_commodity: 3, max_commodities: 10 };
        let mc = solve_mcf_with_objective(&inst, McfObjective::MaxConcurrent, &RevisedSimplex::default()).unwrap();
        let tf = solve_mcf(&inst, &RevisedSimplex::default()).unwrap();
        assert!(mc.total_flow <= tf.total_flow + 1e-6);
    }
}
