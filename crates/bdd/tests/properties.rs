//! Property-based tests: BDD semantics against a brute-force truth-table
//! oracle, and agreement between the two engine profiles.

use netrepro_bdd::{BddManager, EngineProfile, Ref, FALSE, TRUE};
use proptest::prelude::*;

const VARS: u32 = 5;

/// A tiny boolean-expression AST we can evaluate both via the BDD engine
/// and directly.
#[derive(Debug, Clone)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Diff(Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0..VARS).prop_map(Expr::Var);
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Diff(Box::new(a), Box::new(b))),
        ]
    })
}

fn eval_direct(e: &Expr, assignment: &[bool]) -> bool {
    match e {
        Expr::Var(v) => assignment[*v as usize],
        Expr::Not(a) => !eval_direct(a, assignment),
        Expr::And(a, b) => eval_direct(a, assignment) && eval_direct(b, assignment),
        Expr::Or(a, b) => eval_direct(a, assignment) || eval_direct(b, assignment),
        Expr::Xor(a, b) => eval_direct(a, assignment) ^ eval_direct(b, assignment),
        Expr::Diff(a, b) => eval_direct(a, assignment) && !eval_direct(b, assignment),
    }
}

fn build(m: &mut BddManager, e: &Expr) -> Ref {
    match e {
        Expr::Var(v) => m.var(*v),
        Expr::Not(a) => {
            let a = build(m, a);
            m.not(a)
        }
        Expr::And(a, b) => {
            let a = build(m, a);
            let b = build(m, b);
            m.and(a, b)
        }
        Expr::Or(a, b) => {
            let a = build(m, a);
            let b = build(m, b);
            m.or(a, b)
        }
        Expr::Xor(a, b) => {
            let a = build(m, a);
            let b = build(m, b);
            m.xor(a, b)
        }
        Expr::Diff(a, b) => {
            let a = build(m, a);
            let b = build(m, b);
            m.diff(a, b)
        }
    }
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << VARS)).map(|bits| (0..VARS).map(|i| (bits >> i) & 1 == 1).collect())
}

proptest! {
    /// The BDD of an arbitrary expression agrees with direct evaluation
    /// on every assignment.
    #[test]
    fn bdd_matches_truth_table(e in arb_expr()) {
        let mut m = BddManager::new(VARS, EngineProfile::Cached);
        let f = build(&mut m, &e);
        for a in assignments() {
            prop_assert_eq!(m.eval(f, &a), Ok(eval_direct(&e, &a)));
        }
    }

    /// Cached and Uncached profiles are observationally identical.
    #[test]
    fn profiles_agree(e in arb_expr()) {
        let mut mc = BddManager::new(VARS, EngineProfile::Cached);
        let mut mu = BddManager::new(VARS, EngineProfile::Uncached);
        let fc = build(&mut mc, &e);
        let fu = build(&mut mu, &e);
        for a in assignments() {
            prop_assert_eq!(mc.eval(fc, &a), mu.eval(fu, &a));
        }
        prop_assert_eq!(mc.sat_count(fc), mu.sat_count(fu));
    }

    /// Canonicity: semantically equal expressions map to the same node.
    #[test]
    fn canonical_form(e in arb_expr()) {
        let mut m = BddManager::new(VARS, EngineProfile::Cached);
        let f = build(&mut m, &e);
        // Double negation must return the identical Ref.
        let nf = m.not(f);
        let nnf = m.not(nf);
        prop_assert_eq!(f, nnf);
        // f XOR f is the FALSE terminal, f OR f is f itself.
        prop_assert_eq!(m.xor(f, f), FALSE);
        prop_assert_eq!(m.or(f, f), f);
    }

    /// sat_count equals the brute-force model count.
    #[test]
    fn satcount_matches_bruteforce(e in arb_expr()) {
        let mut m = BddManager::new(VARS, EngineProfile::Cached);
        let f = build(&mut m, &e);
        let brute = assignments().filter(|a| eval_direct(&e, a)).count();
        prop_assert_eq!(m.sat_count(f), brute as f64);
    }

    /// any_sat returns a genuine witness whenever one exists.
    #[test]
    fn any_sat_is_sound_and_complete(e in arb_expr()) {
        let mut m = BddManager::new(VARS, EngineProfile::Cached);
        let f = build(&mut m, &e);
        let brute_sat = assignments().any(|a| eval_direct(&e, &a));
        match m.any_sat(f) {
            Some(w) => {
                prop_assert!(brute_sat);
                prop_assert_eq!(m.eval(f, &w), Ok(true));
            }
            None => prop_assert!(!brute_sat),
        }
    }

    /// GC with the root protected never changes the function.
    #[test]
    fn gc_preserves_semantics(e in arb_expr()) {
        let mut m = BddManager::new(VARS, EngineProfile::Cached);
        let f = build(&mut m, &e);
        m.ref_inc(f);
        m.gc();
        for a in assignments() {
            prop_assert_eq!(m.eval(f, &a), Ok(eval_direct(&e, &a)));
        }
        // Rebuilding after GC reproduces the identical node.
        let f2 = build(&mut m, &e);
        prop_assert_eq!(f, f2);
    }

    /// Boolean-algebra identities hold at the Ref level (canonicity).
    #[test]
    fn algebraic_identities(a in arb_expr(), b in arb_expr(), c in arb_expr()) {
        let mut m = BddManager::new(VARS, EngineProfile::Cached);
        let fa = build(&mut m, &a);
        let fb = build(&mut m, &b);
        let fc = build(&mut m, &c);
        // Distributivity: a & (b | c) == (a & b) | (a & c)
        let bc = m.or(fb, fc);
        let lhs = m.and(fa, bc);
        let ab = m.and(fa, fb);
        let ac = m.and(fa, fc);
        let rhs = m.or(ab, ac);
        prop_assert_eq!(lhs, rhs);
        // Absorption: a | (a & b) == a
        let aab = m.or(fa, ab);
        prop_assert_eq!(aab, fa);
        // Complement: a | !a == TRUE
        let na = m.not(fa);
        prop_assert_eq!(m.or(fa, na), TRUE);
    }
}
