//! Graphviz (`dot`) export of BDDs — the standard way to eyeball a
//! predicate when a verifier disagrees with its oracle.

use crate::manager::BddManager;
use crate::node::Ref;
use std::collections::HashSet;
use std::fmt::Write as _;

impl BddManager {
    /// Render `f` as a Graphviz digraph. Solid edges are the
    /// high/then branches, dashed edges the low/else branches;
    /// variables may be given display names via `var_names` (falls
    /// back to `x<i>`).
    pub fn to_dot(&self, f: Ref, var_names: &[&str]) -> String {
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        out.push_str("  f0 [label=\"0\", shape=box];\n");
        out.push_str("  f1 [label=\"1\", shape=box];\n");
        let mut seen: HashSet<u32> = HashSet::new();
        let mut stack = vec![f.0];
        while let Some(n) = stack.pop() {
            if n <= 1 || !seen.insert(n) {
                continue;
            }
            let (var, low, high) = self.node_parts(n);
            let name = var_names
                .get(var as usize)
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("x{var}"));
            let _ = writeln!(out, "  n{n} [label=\"{name}\", shape=circle];");
            let _ = writeln!(out, "  n{n} -> {} [style=dashed];", node_ref(low));
            let _ = writeln!(out, "  n{n} -> {};", node_ref(high));
            stack.push(low);
            stack.push(high);
        }
        match f.0 {
            0 => out.push_str("  root -> f0; root [shape=point];\n"),
            1 => out.push_str("  root -> f1; root [shape=point];\n"),
            n => {
                let _ = writeln!(out, "  root [shape=point];\n  root -> n{n};");
            }
        }
        out.push_str("}\n");
        out
    }
}

fn node_ref(n: u32) -> String {
    match n {
        0 => "f0".to_string(),
        1 => "f1".to_string(),
        n => format!("n{n}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::EngineProfile;
    use crate::node::{FALSE, TRUE};

    #[test]
    fn terminals_render() {
        let m = BddManager::new(2, EngineProfile::Cached);
        let dot = m.to_dot(TRUE, &[]);
        assert!(dot.contains("root -> f1"));
        let dot = m.to_dot(FALSE, &[]);
        assert!(dot.contains("root -> f0"));
    }

    #[test]
    fn one_node_per_distinct_subfunction() {
        let mut m = BddManager::new(3, EngineProfile::Cached);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        let dot = m.to_dot(f, &["a", "b", "c"]);
        // Two decision nodes (a and b) plus terminals.
        assert_eq!(dot.matches("shape=circle").count(), 2);
        assert!(dot.contains("label=\"a\""));
        assert!(dot.contains("label=\"b\""));
        assert!(dot.contains("digraph bdd"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn unnamed_variables_get_indices() {
        let mut m = BddManager::new(4, EngineProfile::Cached);
        let v = m.var(3);
        let dot = m.to_dot(v, &[]);
        assert!(dot.contains("label=\"x3\""));
    }

    #[test]
    fn node_count_matches_size_of() {
        let mut m = BddManager::new(6, EngineProfile::Cached);
        let f = m.field_range(0, 6, 10, 43);
        let dot = m.to_dot(f, &[]);
        assert_eq!(dot.matches("shape=circle").count(), m.size_of(f));
    }
}
