//! Convenience constructors for the predicate shapes data-plane
//! verification needs: literal cubes, fixed-width bit-field equality and
//! IP-style prefix matches.

use crate::manager::BddManager;
use crate::node::{Ref, FALSE, TRUE};

/// A single variable literal: the variable index and its polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Literal {
    /// Variable index.
    pub var: u32,
    /// `true` for the positive literal, `false` for the negated one.
    pub positive: bool,
}

impl BddManager {
    /// Conjunction of the given literals (a *cube*). The empty cube is
    /// `TRUE`.
    pub fn cube(&mut self, literals: &[Literal]) -> Ref {
        // Build bottom-up in descending variable order so each `mk` is a
        // single node construction — no `apply` needed.
        let mut lits: Vec<Literal> = literals.to_vec();
        lits.sort_by_key(|l| std::cmp::Reverse(l.var));
        let mut acc = TRUE;
        for l in lits {
            assert!(l.var < self.num_vars(), "literal variable out of range");
            acc = if l.positive {
                Ref(self.mk_raw(l.var, FALSE.0, acc.0))
            } else {
                Ref(self.mk_raw(l.var, acc.0, FALSE.0))
            };
        }
        acc
    }

    /// Predicate: the `width` variables starting at `base` (most
    /// significant first) equal `value`.
    pub fn field_eq(&mut self, base: u32, width: u32, value: u64) -> Ref {
        assert!(width <= 64);
        let lits: Vec<Literal> = (0..width)
            .map(|i| Literal {
                var: base + i,
                positive: (value >> (width - 1 - i)) & 1 == 1,
            })
            .collect();
        self.cube(&lits)
    }

    /// Predicate: the `width`-bit field at `base` matches the IP-style
    /// prefix `value/len` (the top `len` bits equal the top `len` bits of
    /// `value`). `len == 0` matches everything.
    pub fn field_prefix(&mut self, base: u32, width: u32, value: u64, len: u32) -> Ref {
        assert!(len <= width && width <= 64);
        if len == 0 {
            return TRUE;
        }
        let lits: Vec<Literal> = (0..len)
            .map(|i| Literal {
                var: base + i,
                positive: (value >> (width - 1 - i)) & 1 == 1,
            })
            .collect();
        self.cube(&lits)
    }

    /// Predicate: the `width`-bit field at `base`, read as an unsigned
    /// integer, lies in the inclusive range `[lo, hi]`. Used for port
    /// ranges in ACL rules.
    pub fn field_range(&mut self, base: u32, width: u32, lo: u64, hi: u64) -> Ref {
        assert!(width <= 63 && lo <= hi && hi < (1u64 << width));
        let ge = self.field_ge(base, width, lo);
        self.ref_inc(ge);
        let le = self.field_le(base, width, hi);
        self.ref_inc(le);
        let r = self.and(ge, le);
        self.ref_dec(ge);
        self.ref_dec(le);
        r
    }

    fn field_ge(&mut self, base: u32, width: u32, lo: u64) -> Ref {
        // Build from the least significant bit upward:
        //   ge_i = if bit_i(lo)==1 { x_i & ge_{i+1} } else { x_i | ge_{i+1} }
        let mut acc = TRUE;
        for i in (0..width).rev() {
            let bit = (lo >> (width - 1 - i)) & 1 == 1;
            let x = self.var(base + i);
            self.ref_inc(acc);
            let next = if bit { self.and(x, acc) } else { self.or(x, acc) };
            self.ref_dec(acc);
            acc = next;
        }
        acc
    }

    fn field_le(&mut self, base: u32, width: u32, hi: u64) -> Ref {
        let mut acc = TRUE;
        for i in (0..width).rev() {
            let bit = (hi >> (width - 1 - i)) & 1 == 1;
            let nx = self.nvar(base + i);
            self.ref_inc(acc);
            let next = if bit { self.or(nx, acc) } else { self.and(nx, acc) };
            self.ref_dec(acc);
            acc = next;
        }
        acc
    }

    pub(crate) fn mk_raw(&mut self, var: u32, low: u32, high: u32) -> u32 {
        if low == high {
            low
        } else {
            self.table_mk(var, low, high)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::EngineProfile;

    fn mgr(n: u32) -> BddManager {
        BddManager::new(n, EngineProfile::Cached)
    }

    #[test]
    fn empty_cube_is_true() {
        let mut m = mgr(4);
        assert_eq!(m.cube(&[]), TRUE);
    }

    #[test]
    fn cube_matches_manual_conjunction() {
        let mut m = mgr(4);
        let c = m.cube(&[
            Literal { var: 0, positive: true },
            Literal { var: 2, positive: false },
        ]);
        let a = m.var(0);
        let nc = m.nvar(2);
        let expect = m.and(a, nc);
        assert_eq!(c, expect);
    }

    #[test]
    fn field_eq_has_single_model_at_full_width() {
        let mut m = mgr(8);
        let f = m.field_eq(0, 8, 0b1010_0110);
        assert_eq!(m.sat_count(f), 1.0);
        let mut assignment = vec![false; 8];
        for (i, bit) in [true, false, true, false, false, true, true, false].iter().enumerate() {
            assignment[i] = *bit;
        }
        assert_eq!(m.eval(f, &assignment), Ok(true));
    }

    #[test]
    fn prefix_len_zero_matches_everything() {
        let mut m = mgr(8);
        assert_eq!(m.field_prefix(0, 8, 0, 0), TRUE);
    }

    #[test]
    fn prefix_counts_match_width() {
        let mut m = mgr(8);
        // /3 prefix over 8 bits leaves 5 free bits -> 32 models.
        let p = m.field_prefix(0, 8, 0b101_00000, 3);
        assert_eq!(m.sat_count(p), 32.0);
    }

    #[test]
    fn longer_prefix_is_subset_of_shorter() {
        let mut m = mgr(8);
        let p8 = m.field_prefix(0, 8, 0b1010_0110, 8);
        let p4 = m.field_prefix(0, 8, 0b1010_0110, 4);
        assert!(m.implies(p8, p4));
        assert!(!m.implies(p4, p8));
    }

    #[test]
    fn range_counts_are_exact() {
        let mut m = mgr(6);
        let r = m.field_range(0, 6, 10, 20);
        assert_eq!(m.sat_count(r), 11.0);
    }

    #[test]
    fn range_membership_by_eval() {
        let mut m = mgr(6);
        let r = m.field_range(0, 6, 10, 20);
        for v in 0u64..64 {
            let bits: Vec<bool> = (0..6).map(|i| (v >> (5 - i)) & 1 == 1).collect();
            assert_eq!(m.eval(r, &bits), Ok((10..=20).contains(&v)), "value {v}");
        }
    }

    #[test]
    fn degenerate_range_is_field_eq() {
        let mut m = mgr(6);
        let r = m.field_range(0, 6, 17, 17);
        let e = m.field_eq(0, 6, 17);
        assert_eq!(r, e);
    }
}
