//! `netrepro-bdd` — a reduced, ordered binary decision diagram (ROBDD)
//! engine.
//!
//! This crate is the substrate beneath the two data-plane-verification
//! systems reproduced in the HotNets'23 paper (the Atomic Predicates
//! verifier of Yang & Lam and APKeep of Zhang et al.). Both of those
//! systems spend essentially all of their time in BDD operations, and the
//! paper attributes participant D's 20× predicate-computation slowdown
//! purely to the choice of BDD library (JavaBDD vs JDD).
//!
//! To let the benchmark harness reproduce that finding, the engine exposes
//! two [`EngineProfile`]s:
//!
//! * [`EngineProfile::Cached`] — a JDD-like configuration: hash-consed
//!   unique table plus a persistent operation memo cache shared across
//!   calls.
//! * [`EngineProfile::Uncached`] — a JavaBDD-like "slower library"
//!   configuration: results are memoised only within a single operation
//!   call, so no work is shared across calls.
//!
//! Both profiles compute identical BDDs; only the constant factors differ.
//!
//! # Quick example
//!
//! ```
//! use netrepro_bdd::{BddManager, EngineProfile};
//!
//! let mut m = BddManager::new(4, EngineProfile::Cached);
//! let a = m.var(0);
//! let b = m.var(1);
//! let ab = m.and(a, b);
//! assert_eq!(m.sat_count(ab), 4.0); // 4 of 16 assignments satisfy a & b
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod dot;
mod fnv;
pub mod manager;
pub mod quant;
pub mod node;
pub mod sat;

pub use manager::{BddManager, EngineProfile};
pub use node::{Ref, FALSE, TRUE};

/// Errors produced by the BDD engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BddError {
    /// A variable index was at or above the manager's variable count.
    VariableOutOfRange {
        /// The offending variable index.
        var: u32,
        /// The manager's variable count.
        count: u32,
    },
    /// A node reference did not denote a live node.
    InvalidRef(Ref),
    /// An evaluation was given fewer assignment bits than the manager
    /// has variables. Evaluation must see every variable: a partial
    /// slice would silently read out of bounds (or, worse, panic) the
    /// first time the BDD actually branches on a missing variable.
    AssignmentTooShort {
        /// Number of assignment bits supplied.
        got: usize,
        /// Number of variables the manager requires.
        need: usize,
    },
    /// The node table outgrew the manager's configured node cap. The
    /// manager stays usable; callers absorb the fault by raising the
    /// cap (see [`BddManager::set_node_cap`]) and rebuilding, or
    /// surface this as a typed failure instead of aborting.
    TableExhausted {
        /// Allocated (non-free) nodes when the cap was crossed.
        nodes: usize,
        /// The configured cap.
        cap: usize,
    },
}

impl std::fmt::Display for BddError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BddError::VariableOutOfRange { var, count } => {
                write!(f, "variable {var} out of range (manager has {count} variables)")
            }
            BddError::InvalidRef(r) => write!(f, "invalid BDD reference {r:?}"),
            BddError::AssignmentTooShort { got, need } => {
                write!(f, "assignment has {got} bits but the manager has {need} variables")
            }
            BddError::TableExhausted { nodes, cap } => {
                write!(f, "BDD node table exhausted: {nodes} nodes exceed cap {cap}")
            }
        }
    }
}

impl std::error::Error for BddError {}
