//! The BDD manager: boolean operations over hash-consed nodes.

use crate::fnv::{map_with_capacity, FnvMap};
use crate::node::{NodeTable, Ref, FALSE, TRUE};

/// Entry count of the direct-mapped persistent `apply` cache (the
/// `Cached` profile's cross-call memo). Power of two; fixed for the
/// manager's lifetime — collisions overwrite (lossy replacement, the
/// CUDD "computed table" policy) instead of growing the table.
const OP_CACHE_WAYS: usize = 1 << 14;
/// Entry count of the direct-mapped persistent `not` cache.
const NOT_CACHE_WAYS: usize = 1 << 12;
/// Initial sizing of the per-call scratch memos (the `Uncached`
/// profile's within-call tables).
const SCRATCH_CAPACITY: usize = 1 << 8;

/// Empty-slot sentinel for the direct-mapped caches: arena indices
/// never reach `u32::MAX`.
const EMPTY_KEY: u32 = u32::MAX;

#[inline]
fn mix64(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

#[derive(Debug, Clone, Copy)]
struct OpEntry {
    a: u32,
    b: u32,
    r: u32,
    op: Op,
}

/// Bounded direct-mapped memo for binary `apply` results. One slot per
/// hash bucket; a colliding key simply overwrites (and is counted as an
/// eviction). Lossiness is invisible to results: a lost entry only
/// means the recursion re-derives a node that already exists in the
/// unique table, so the hash-cons hit returns the identical index.
#[derive(Debug)]
struct ApplyCache {
    entries: Box<[OpEntry]>,
    mask: u64,
    evictions: u64,
}

impl ApplyCache {
    fn new(ways: usize) -> Self {
        debug_assert!(ways.is_power_of_two());
        ApplyCache {
            entries: vec![OpEntry { a: EMPTY_KEY, b: 0, r: 0, op: Op::And }; ways]
                .into_boxed_slice(),
            mask: (ways - 1) as u64,
            evictions: 0,
        }
    }

    #[inline]
    fn slot(&self, op: Op, a: u32, b: u32) -> usize {
        let h = (a as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (b as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ ((op as u64 + 1).wrapping_mul(0x1656_67B1_9E37_79F9));
        (mix64(h) & self.mask) as usize
    }

    #[inline]
    fn get(&self, op: Op, a: u32, b: u32) -> Option<u32> {
        let e = &self.entries[self.slot(op, a, b)];
        if e.a == a && e.b == b && e.op == op && a != EMPTY_KEY {
            Some(e.r)
        } else {
            None
        }
    }

    #[inline]
    fn put(&mut self, op: Op, a: u32, b: u32, r: u32) {
        let s = self.slot(op, a, b);
        let e = &mut self.entries[s];
        if e.a != EMPTY_KEY && !(e.a == a && e.b == b && e.op == op) {
            self.evictions += 1;
        }
        *e = OpEntry { a, b, r, op };
    }

    fn clear(&mut self) {
        for e in self.entries.iter_mut() {
            e.a = EMPTY_KEY;
        }
    }
}

/// Bounded direct-mapped memo for `not` results (including the
/// involution entries `r → a`).
#[derive(Debug)]
struct NotCache {
    entries: Box<[(u32, u32)]>,
    mask: u64,
    evictions: u64,
}

impl NotCache {
    fn new(ways: usize) -> Self {
        debug_assert!(ways.is_power_of_two());
        NotCache {
            entries: vec![(EMPTY_KEY, 0); ways].into_boxed_slice(),
            mask: (ways - 1) as u64,
            evictions: 0,
        }
    }

    #[inline]
    fn slot(&self, a: u32) -> usize {
        (mix64((a as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) & self.mask) as usize
    }

    #[inline]
    fn get(&self, a: u32) -> Option<u32> {
        let (k, r) = self.entries[self.slot(a)];
        if k == a && a != EMPTY_KEY {
            Some(r)
        } else {
            None
        }
    }

    #[inline]
    fn put(&mut self, a: u32, r: u32) {
        let s = self.slot(a);
        let e = &mut self.entries[s];
        if e.0 != EMPTY_KEY && e.0 != a {
            self.evictions += 1;
        }
        *e = (a, r);
    }

    fn clear(&mut self) {
        for e in self.entries.iter_mut() {
            e.0 = EMPTY_KEY;
        }
    }
}

/// How aggressively the engine memoises operation results.
///
/// The two profiles model the two Java BDD libraries compared in the
/// paper (participant D, §3.2): JDD with a persistent operation cache,
/// and JavaBDD whose effective caching the paper found markedly weaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineProfile {
    /// JDD-like: a persistent memo cache shared across all operations.
    Cached,
    /// JavaBDD-like: memoisation only within a single operation call, so
    /// repeated queries redo their work. Same results, worse constants.
    Uncached,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    Diff,
    Xor,
}

/// Counters describing the work the manager has performed. Useful for
/// ablation benches and for asserting that the `Cached` profile actually
/// shares work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Recursive `apply` invocations that missed every cache.
    pub apply_misses: u64,
    /// Recursive `apply` invocations answered from a memo cache.
    pub apply_hits: u64,
    /// Garbage-collection runs.
    pub gc_runs: u64,
    /// Nodes reclaimed across all GC runs.
    pub gc_reclaimed: u64,
    /// Fixed entry count of the direct-mapped `apply` cache. The cache
    /// never grows past this bound for the manager's lifetime.
    pub op_cache_capacity: usize,
    /// Fixed entry count of the direct-mapped `not` cache.
    pub not_cache_capacity: usize,
    /// Memo entries overwritten by a colliding key (the lossy
    /// direct-mapped replacement policy at work). Never resets, even
    /// across [`BddManager::gc`].
    pub cache_evictions: u64,
}

/// A manager owning a node table and (profile-dependent) memo caches.
///
/// All [`Ref`]s returned by one manager are only valid with that manager.
/// Operations never mutate their operands; intermediate nodes stay in the
/// table until [`BddManager::gc`] runs, and survive GC only if protected
/// via [`BddManager::ref_inc`].
#[derive(Debug)]
pub struct BddManager {
    table: NodeTable,
    num_vars: u32,
    profile: EngineProfile,
    op_cache: ApplyCache,
    not_cache: NotCache,
    /// Reusable within-call memo for `not`. Cleared before every call,
    /// so the `Uncached` profile's semantics (memoisation only inside a
    /// single operation) are unchanged — only the per-call allocation
    /// is gone.
    not_scratch: FnvMap<u32, u32>,
    /// Reusable within-call memo for the binary `apply`.
    apply_scratch: FnvMap<(u32, u32), u32>,
    stats: ManagerStats,
    node_cap: Option<usize>,
}

impl BddManager {
    /// Create a manager over `num_vars` boolean variables (ordered by
    /// their index) with the given engine profile.
    pub fn new(num_vars: u32, profile: EngineProfile) -> Self {
        Self::with_cache_ways(num_vars, profile, OP_CACHE_WAYS, NOT_CACHE_WAYS)
    }

    /// Construction with explicit cache sizing; crate-internal so tests
    /// can force collisions with tiny caches. Production managers all
    /// go through [`BddManager::new`] with the fixed default ways.
    pub(crate) fn with_cache_ways(
        num_vars: u32,
        profile: EngineProfile,
        op_ways: usize,
        not_ways: usize,
    ) -> Self {
        BddManager {
            table: NodeTable::new(),
            num_vars,
            profile,
            op_cache: ApplyCache::new(op_ways),
            not_cache: NotCache::new(not_ways),
            not_scratch: map_with_capacity(SCRATCH_CAPACITY),
            apply_scratch: map_with_capacity(SCRATCH_CAPACITY),
            stats: ManagerStats::default(),
            node_cap: None,
        }
    }

    /// Like [`BddManager::new`], but with a node-table cap enforced in
    /// two modes:
    ///
    /// * the classic infallible ops ([`BddManager::and`] etc.) treat it
    ///   *softly* — they keep working past the cap and
    ///   [`BddManager::check_capacity`] reports a typed
    ///   [`BddError::TableExhausted`] afterwards, so the caller can
    ///   stop, raise the cap and retry;
    /// * the `try_*` ops ([`BddManager::try_and`] etc.) enforce it
    ///   *hard* — the unique table refuses to mint the node that would
    ///   exceed the cap and the operation returns the typed error
    ///   immediately, leaving the manager usable (the
    ///   partitioned-verification budget path).
    pub fn with_node_cap(num_vars: u32, profile: EngineProfile, cap: usize) -> Self {
        let mut m = Self::new(num_vars, profile);
        m.node_cap = Some(cap);
        m
    }

    /// The configured node cap, if any.
    pub fn node_cap(&self) -> Option<usize> {
        self.node_cap
    }

    /// Replace the node cap (`None` removes it). Raising the cap after
    /// a [`BddError::TableExhausted`] is the growth-retry absorption
    /// path.
    pub fn set_node_cap(&mut self, cap: Option<usize>) {
        self.node_cap = cap;
    }

    /// Whether the table has outgrown the configured cap. Counts live
    /// (allocated, non-terminal) nodes, so a [`BddManager::gc`] that
    /// reclaims enough garbage clears the condition.
    pub fn exhausted(&self) -> bool {
        self.node_cap.is_some_and(|cap| self.table.live_count() > cap)
    }

    /// `Err(TableExhausted)` once the table has outgrown the cap.
    pub fn check_capacity(&self) -> Result<(), crate::BddError> {
        match self.node_cap {
            Some(cap) if self.table.live_count() > cap => {
                Err(crate::BddError::TableExhausted { nodes: self.table.live_count(), cap })
            }
            _ => Ok(()),
        }
    }

    /// The number of variables this manager was created with.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The engine profile this manager runs under.
    pub fn profile(&self) -> EngineProfile {
        self.profile
    }

    /// Work counters accumulated since creation, plus the (fixed)
    /// memo-cache geometry and the running eviction count.
    pub fn stats(&self) -> ManagerStats {
        ManagerStats {
            op_cache_capacity: self.op_cache.entries.len(),
            not_cache_capacity: self.not_cache.entries.len(),
            cache_evictions: self.op_cache.evictions + self.not_cache.evictions,
            ..self.stats
        }
    }

    /// Number of live non-terminal nodes in the table.
    pub fn node_count(&self) -> usize {
        self.table.live_count()
    }

    /// Allocated slots in the node arena (live + reclaimable).
    pub fn table_capacity(&self) -> usize {
        self.table.capacity()
    }

    /// The BDD for the single variable `var`.
    ///
    /// # Panics
    /// Panics if `var >= num_vars`; variable universes are fixed at
    /// construction time by design (header layouts are static).
    pub fn var(&mut self, var: u32) -> Ref {
        assert!(var < self.num_vars, "variable {var} out of range");
        Ref(self.table.mk(var, FALSE.0, TRUE.0))
    }

    /// The BDD for the negated variable `var`.
    pub fn nvar(&mut self, var: u32) -> Ref {
        assert!(var < self.num_vars, "variable {var} out of range");
        Ref(self.table.mk(var, TRUE.0, FALSE.0))
    }

    /// Protect `r` (and everything it reaches) from garbage collection.
    /// Calls nest: each `ref_inc` must be balanced by a `ref_dec`.
    pub fn ref_inc(&mut self, r: Ref) -> Ref {
        if !r.is_terminal() {
            self.table.get_mut(r.0).refs += 1;
        }
        r
    }

    /// Release one protection on `r`. The node is not freed immediately;
    /// it becomes eligible at the next [`BddManager::gc`].
    pub fn ref_dec(&mut self, r: Ref) {
        if !r.is_terminal() {
            let n = self.table.get_mut(r.0);
            assert!(n.refs > 0, "ref_dec underflow on {r:?}");
            n.refs -= 1;
        }
    }

    /// Run garbage collection, reclaiming every node unreachable from a
    /// protected root. Clears memo caches (they may name dead nodes).
    /// Returns the number of reclaimed nodes.
    pub fn gc(&mut self) -> usize {
        let reclaimed = self.table.gc();
        self.op_cache.clear();
        self.not_cache.clear();
        self.not_scratch.clear();
        self.apply_scratch.clear();
        self.stats.gc_runs += 1;
        self.stats.gc_reclaimed += reclaimed as u64;
        reclaimed
    }

    fn node(&self, r: u32) -> (u32, u32, u32) {
        let n = self.table.get(r);
        (n.var, n.low, n.high)
    }

    /// `(var, low, high)` of a non-terminal node; crate-internal.
    pub(crate) fn node_parts(&self, r: u32) -> (u32, u32, u32) {
        self.node(r)
    }

    /// Direct unique-table access for the cube builders; crate-internal.
    pub(crate) fn table_mk(&mut self, var: u32, low: u32, high: u32) -> u32 {
        self.table.mk(var, low, high)
    }

    /// Conjunction `a ∧ b`.
    pub fn and(&mut self, a: Ref, b: Ref) -> Ref {
        self.binop(Op::And, a, b)
    }

    /// Disjunction `a ∨ b`.
    pub fn or(&mut self, a: Ref, b: Ref) -> Ref {
        self.binop(Op::Or, a, b)
    }

    /// Difference `a ∧ ¬b` — the workhorse of both verifiers (the
    /// `bddEngine.diff` of APKeep's Algorithm 1).
    ///
    /// The `Cached` profile has a native diff operator (as JDD does).
    /// The `Uncached` profile composes it as `and(a, not(b))`,
    /// materialising the full complement on every call — the way
    /// weaker BDD libraries implement set difference, and a large part
    /// of why participant D's JavaBDD-based reproduction computed
    /// predicates up to 20× slower (§3.2).
    pub fn diff(&mut self, a: Ref, b: Ref) -> Ref {
        match self.profile {
            EngineProfile::Cached => self.binop(Op::Diff, a, b),
            EngineProfile::Uncached => {
                let nb = self.not(b);
                self.ref_inc(nb);
                let r = self.binop(Op::And, a, nb);
                self.ref_dec(nb);
                r
            }
        }
    }

    /// Exclusive or `a ⊕ b`.
    pub fn xor(&mut self, a: Ref, b: Ref) -> Ref {
        self.binop(Op::Xor, a, b)
    }

    /// Negation `¬a`.
    pub fn not(&mut self, a: Ref) -> Ref {
        // Take the scratch memo out of `self` for the duration of the
        // recursion (borrowck) and put it back after: the map's
        // allocation survives across calls instead of being rebuilt
        // per negation. Under `Uncached` it is the *only* memo used,
        // and clearing it up front preserves the within-call-only
        // memoisation the profile models.
        let mut local = std::mem::take(&mut self.not_scratch);
        local.clear();
        let r = self.not_rec(a.0, &mut local);
        self.not_scratch = local;
        Ref(r)
    }

    /// If-then-else `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)`.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        // Composed from the cached binary ops; each intermediate is
        // protected so a GC triggered mid-composition cannot reclaim it.
        let nf = self.not(f);
        self.ref_inc(nf);
        let fg = self.and(f, g);
        self.ref_inc(fg);
        let nfh = self.and(nf, h);
        self.ref_inc(nfh);
        let r = self.or(fg, nfh);
        self.ref_dec(nf);
        self.ref_dec(fg);
        self.ref_dec(nfh);
        r
    }

    /// Implication test: does `a ⇒ b` hold (i.e. `a ∧ ¬b = ∅`)?
    pub fn implies(&mut self, a: Ref, b: Ref) -> bool {
        self.diff(a, b) == FALSE
    }

    /// Capacity-checked conjunction. Unlike [`BddManager::and`], which
    /// enforces the node cap *softly* (the operation completes and
    /// [`BddManager::check_capacity`] reports the overrun afterwards),
    /// the `try_*` family refuses to mint the node that would exceed
    /// the cap: the unique table never grows past `cap`, the recursion
    /// unwinds with a typed [`BddError::TableExhausted`], and the
    /// manager stays fully usable — already-minted subresults are
    /// ordinary orphans that the next [`BddManager::gc`] reclaims, and
    /// memo entries written on the way down name real nodes, so a
    /// retry after [`BddManager::set_node_cap`] resumes where it left
    /// off. This is the partitioned-verification path: a per-worker
    /// manager that exhausts its budget mid-merge must surface a typed
    /// error, not wedge or abort the worker.
    pub fn try_and(&mut self, a: Ref, b: Ref) -> Result<Ref, crate::BddError> {
        self.try_binop(Op::And, a, b)
    }

    /// Capacity-checked disjunction; see [`BddManager::try_and`].
    pub fn try_or(&mut self, a: Ref, b: Ref) -> Result<Ref, crate::BddError> {
        self.try_binop(Op::Or, a, b)
    }

    /// Capacity-checked difference; see [`BddManager::try_and`].
    pub fn try_diff(&mut self, a: Ref, b: Ref) -> Result<Ref, crate::BddError> {
        match self.profile {
            EngineProfile::Cached => self.try_binop(Op::Diff, a, b),
            EngineProfile::Uncached => {
                let nb = self.try_not(b)?;
                self.ref_inc(nb);
                let r = self.try_binop(Op::And, a, nb);
                self.ref_dec(nb);
                r
            }
        }
    }

    /// Capacity-checked exclusive or; see [`BddManager::try_and`].
    pub fn try_xor(&mut self, a: Ref, b: Ref) -> Result<Ref, crate::BddError> {
        self.try_binop(Op::Xor, a, b)
    }

    /// Capacity-checked negation; see [`BddManager::try_and`].
    pub fn try_not(&mut self, a: Ref) -> Result<Ref, crate::BddError> {
        let mut local = std::mem::take(&mut self.not_scratch);
        local.clear();
        let r = self.not_rec_capped(a.0, &mut local);
        self.not_scratch = local;
        r.map(Ref)
    }

    fn try_binop(&mut self, op: Op, a: Ref, b: Ref) -> Result<Ref, crate::BddError> {
        let mut local = std::mem::take(&mut self.apply_scratch);
        local.clear();
        let r = self.apply_capped(op, a.0, b.0, &mut local);
        self.apply_scratch = local;
        r.map(Ref)
    }

    /// Mint through the unique table, refusing once the configured cap
    /// is reached (an uncapped manager never refuses).
    fn mk_checked(&mut self, var: u32, low: u32, high: u32) -> Result<u32, crate::BddError> {
        match self.node_cap {
            None => Ok(self.table.mk(var, low, high)),
            Some(cap) => self
                .table
                .mk_capped(var, low, high, cap)
                .map_err(|nodes| crate::BddError::TableExhausted { nodes, cap }),
        }
    }

    /// Evaluate the function under a full variable assignment.
    ///
    /// Returns [`BddError::AssignmentTooShort`] when `assignment` has
    /// fewer bits than the manager has variables (previously this
    /// `assert!`ed, which turned a malformed query into a library
    /// panic — exactly the class of boundary defect the no-panic-in-lib
    /// policy exists to keep out of the verification hot path).
    pub fn eval(&self, r: Ref, assignment: &[bool]) -> Result<bool, crate::BddError> {
        if assignment.len() < self.num_vars as usize {
            return Err(crate::BddError::AssignmentTooShort {
                got: assignment.len(),
                need: self.num_vars as usize,
            });
        }
        let mut cur = r.0;
        loop {
            match cur {
                0 => return Ok(false),
                1 => return Ok(true),
                _ => {
                    let (var, low, high) = self.node(cur);
                    cur = if assignment[var as usize] { high } else { low };
                }
            }
        }
    }

    fn not_rec(&mut self, a: u32, local: &mut FnvMap<u32, u32>) -> u32 {
        match a {
            0 => return 1,
            1 => return 0,
            _ => {}
        }
        if let Some(r) = self.not_cache.get(a) {
            self.stats.apply_hits += 1;
            return r;
        }
        if let Some(&r) = local.get(&a) {
            self.stats.apply_hits += 1;
            return r;
        }
        self.stats.apply_misses += 1;
        let (var, low, high) = self.node(a);
        let l = self.not_rec(low, local);
        let h = self.not_rec(high, local);
        let r = if l == h { l } else { self.table.mk(var, l, h) };
        match self.profile {
            EngineProfile::Cached => {
                self.not_cache.put(a, r);
                // Negation is an involution on ROBDDs, so the reverse
                // mapping is equally valid — the ITE-style short
                // circuit that makes ¬¬f (ubiquitous in diff/implies
                // chains) a hit instead of a second full traversal.
                self.not_cache.put(r, a);
            }
            EngineProfile::Uncached => {
                local.insert(a, r);
            }
        }
        r
    }

    fn not_rec_capped(
        &mut self,
        a: u32,
        local: &mut FnvMap<u32, u32>,
    ) -> Result<u32, crate::BddError> {
        match a {
            0 => return Ok(1),
            1 => return Ok(0),
            _ => {}
        }
        if let Some(r) = self.not_cache.get(a) {
            self.stats.apply_hits += 1;
            return Ok(r);
        }
        if let Some(&r) = local.get(&a) {
            self.stats.apply_hits += 1;
            return Ok(r);
        }
        self.stats.apply_misses += 1;
        let (var, low, high) = self.node(a);
        let l = self.not_rec_capped(low, local)?;
        let h = self.not_rec_capped(high, local)?;
        let r = if l == h { l } else { self.mk_checked(var, l, h)? };
        match self.profile {
            EngineProfile::Cached => {
                self.not_cache.put(a, r);
                self.not_cache.put(r, a);
            }
            EngineProfile::Uncached => {
                local.insert(a, r);
            }
        }
        Ok(r)
    }

    fn apply_capped(
        &mut self,
        op: Op,
        a: u32,
        b: u32,
        local: &mut FnvMap<(u32, u32), u32>,
    ) -> Result<u32, crate::BddError> {
        if let Some(t) = Self::terminal_case(op, a, b) {
            return Ok(t);
        }
        let (ka, kb) = match op {
            Op::And | Op::Or | Op::Xor => (a.min(b), a.max(b)),
            Op::Diff => (a, b),
        };
        if let Some(r) = self.op_cache.get(op, ka, kb) {
            self.stats.apply_hits += 1;
            return Ok(r);
        }
        if let Some(&r) = local.get(&(ka, kb)) {
            self.stats.apply_hits += 1;
            return Ok(r);
        }
        self.stats.apply_misses += 1;

        let (va, la, ha) = self.node(a);
        let (vb, lb, hb) = self.node(b);
        let top = va.min(vb);
        let (al, ah) = if va == top { (la, ha) } else { (a, a) };
        let (bl, bh) = if vb == top { (lb, hb) } else { (b, b) };

        let l = self.apply_capped(op, al, bl, local)?;
        let h = self.apply_capped(op, ah, bh, local)?;
        let r = if l == h { l } else { self.mk_checked(top, l, h)? };

        match self.profile {
            EngineProfile::Cached => {
                self.op_cache.put(op, ka, kb, r);
            }
            EngineProfile::Uncached => {
                local.insert((ka, kb), r);
            }
        }
        Ok(r)
    }

    fn binop(&mut self, op: Op, a: Ref, b: Ref) -> Ref {
        // Same scratch-reuse pattern as `not`: allocation persists,
        // memoisation stays within this single call.
        let mut local = std::mem::take(&mut self.apply_scratch);
        local.clear();
        let r = self.apply(op, a.0, b.0, &mut local);
        self.apply_scratch = local;
        Ref(r)
    }

    fn terminal_case(op: Op, a: u32, b: u32) -> Option<u32> {
        match op {
            Op::And => {
                if a == 0 || b == 0 {
                    Some(0)
                } else if a == 1 {
                    Some(b)
                } else if b == 1 || a == b {
                    Some(a)
                } else {
                    None
                }
            }
            Op::Or => {
                if a == 1 || b == 1 {
                    Some(1)
                } else if a == 0 {
                    Some(b)
                } else if b == 0 || a == b {
                    Some(a)
                } else {
                    None
                }
            }
            Op::Diff => {
                if a == 0 || b == 1 || a == b {
                    Some(0)
                } else if b == 0 {
                    Some(a)
                } else {
                    None
                }
            }
            Op::Xor => {
                if a == b {
                    Some(0)
                } else if a == 0 {
                    Some(b)
                } else if b == 0 {
                    Some(a)
                } else {
                    None
                }
            }
        }
    }

    fn apply(&mut self, op: Op, a: u32, b: u32, local: &mut FnvMap<(u32, u32), u32>) -> u32 {
        if let Some(t) = Self::terminal_case(op, a, b) {
            return t;
        }
        // Commutative ops get a normalised cache key.
        let (ka, kb) = match op {
            Op::And | Op::Or | Op::Xor => (a.min(b), a.max(b)),
            Op::Diff => (a, b),
        };
        if let Some(r) = self.op_cache.get(op, ka, kb) {
            self.stats.apply_hits += 1;
            return r;
        }
        if let Some(&r) = local.get(&(ka, kb)) {
            self.stats.apply_hits += 1;
            return r;
        }
        self.stats.apply_misses += 1;

        let (va, la, ha) = self.node(a);
        let (vb, lb, hb) = self.node(b);
        let top = va.min(vb);
        let (al, ah) = if va == top { (la, ha) } else { (a, a) };
        let (bl, bh) = if vb == top { (lb, hb) } else { (b, b) };

        let l = self.apply(op, al, bl, local);
        let h = self.apply(op, ah, bh, local);
        let r = if l == h { l } else { self.table.mk(top, l, h) };

        match self.profile {
            EngineProfile::Cached => {
                self.op_cache.put(op, ka, kb, r);
            }
            EngineProfile::Uncached => {
                local.insert((ka, kb), r);
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> BddManager {
        BddManager::new(4, EngineProfile::Cached)
    }

    #[test]
    fn terminals_behave_as_constants() {
        let mut m = mgr();
        assert_eq!(m.and(TRUE, FALSE), FALSE);
        assert_eq!(m.or(TRUE, FALSE), TRUE);
        assert_eq!(m.not(FALSE), TRUE);
        assert_eq!(m.diff(TRUE, TRUE), FALSE);
        assert_eq!(m.xor(TRUE, TRUE), FALSE);
    }

    #[test]
    fn var_and_nvar_are_complements() {
        let mut m = mgr();
        let a = m.var(2);
        let na = m.nvar(2);
        assert_eq!(m.not(a), na);
        assert_eq!(m.and(a, na), FALSE);
        assert_eq!(m.or(a, na), TRUE);
    }

    #[test]
    fn and_is_commutative_and_idempotent() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        assert_eq!(m.and(a, b), m.and(b, a));
        assert_eq!(m.and(a, a), a);
    }

    #[test]
    fn de_morgan_holds() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(3);
        let lhs = {
            let ab = m.and(a, b);
            m.not(ab)
        };
        let rhs = {
            let na = m.not(a);
            let nb = m.not(b);
            m.or(na, nb)
        };
        assert_eq!(lhs, rhs, "canonical form must make ¬(a∧b) == ¬a∨¬b");
    }

    #[test]
    fn diff_matches_and_not() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let d = m.diff(a, b);
        let nb = m.not(b);
        let anb = m.and(a, nb);
        assert_eq!(d, anb);
    }

    #[test]
    fn ite_matches_definition() {
        let mut m = mgr();
        let f = m.var(0);
        let g = m.var(1);
        let h = m.var(2);
        let ite = m.ite(f, g, h);
        let fg = m.and(f, g);
        let nf = m.not(f);
        let nfh = m.and(nf, h);
        let expect = m.or(fg, nfh);
        assert_eq!(ite, expect);
    }

    #[test]
    fn eval_agrees_with_structure() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b); // a & b
        assert_eq!(m.eval(f, &[true, true, false, false]), Ok(true));
        assert_eq!(m.eval(f, &[true, false, false, false]), Ok(false));
        assert_eq!(m.eval(f, &[false, true, false, false]), Ok(false));
    }

    #[test]
    fn eval_short_assignment_is_a_typed_error() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        // Regression: this used to `assert!` (a library panic) instead
        // of returning an error.
        assert_eq!(
            m.eval(f, &[true, true]),
            Err(crate::BddError::AssignmentTooShort { got: 2, need: 4 })
        );
        assert_eq!(
            m.eval(f, &[]),
            Err(crate::BddError::AssignmentTooShort { got: 0, need: 4 })
        );
        // Exactly num_vars bits is the boundary and must succeed.
        assert_eq!(m.eval(f, &[true, true, false, false]), Ok(true));
        // Extra bits beyond num_vars are ignored, not an error.
        assert_eq!(m.eval(f, &[true, true, false, false, true]), Ok(true));
    }

    #[test]
    fn implies_detects_subset() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        assert!(m.implies(ab, a));
        assert!(!m.implies(a, ab));
    }

    #[test]
    fn gc_preserves_protected_roots() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        m.ref_inc(f);
        m.gc();
        // f must still evaluate correctly after GC.
        assert_eq!(m.eval(f, &[true, true, false, false]), Ok(true));
        // Rebuilding the same function after GC yields the same node.
        let a2 = m.var(0);
        let b2 = m.var(1);
        assert_eq!(m.and(a2, b2), f);
    }

    #[test]
    fn gc_reclaims_unprotected_intermediates() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let _f = m.and(a, b);
        let before = m.node_count();
        let reclaimed = m.gc();
        assert!(reclaimed > 0);
        assert!(m.node_count() < before);
    }

    #[test]
    fn cached_profile_reuses_work_across_calls() {
        let mut m = BddManager::new(16, EngineProfile::Cached);
        let mut f = TRUE;
        for i in 0..16 {
            let v = m.var(i);
            f = m.and(f, v);
        }
        let misses_before = m.stats().apply_misses;
        // Recompute the same chain: every apply should hit the cache.
        let mut g = TRUE;
        for i in 0..16 {
            let v = m.var(i);
            g = m.and(g, v);
        }
        assert_eq!(f, g);
        assert_eq!(m.stats().apply_misses, misses_before);
    }

    #[test]
    fn uncached_profile_redoes_work_across_calls() {
        let mut m = BddManager::new(16, EngineProfile::Uncached);
        let mut f = TRUE;
        for i in 0..16 {
            let v = m.var(i);
            f = m.and(f, v);
        }
        let misses_before = m.stats().apply_misses;
        let mut g = TRUE;
        for i in 0..16 {
            let v = m.var(i);
            g = m.and(g, v);
        }
        assert_eq!(f, g, "profiles must agree on results");
        assert!(
            m.stats().apply_misses > misses_before,
            "uncached profile must redo work"
        );
    }

    #[test]
    fn double_negation_is_a_cache_hit_under_cached() {
        let mut m = BddManager::new(8, EngineProfile::Cached);
        let mut f = TRUE;
        for i in 0..8 {
            let v = m.var(i);
            f = m.and(f, v);
        }
        let nf = m.not(f);
        let misses_before = m.stats().apply_misses;
        let nnf = m.not(nf);
        assert_eq!(nnf, f, "¬¬f must be f");
        assert_eq!(
            m.stats().apply_misses,
            misses_before,
            "the involution entry answers ¬¬f without a second traversal"
        );
    }

    #[test]
    fn uncached_not_redoes_work_despite_scratch_reuse() {
        let mut m = BddManager::new(8, EngineProfile::Uncached);
        let mut f = TRUE;
        for i in 0..8 {
            let v = m.var(i);
            f = m.and(f, v);
        }
        let n1 = m.not(f);
        let misses_before = m.stats().apply_misses;
        let n2 = m.not(f);
        assert_eq!(n1, n2, "profiles must agree on results");
        assert!(
            m.stats().apply_misses > misses_before,
            "the reused scratch buffer must not leak memo entries across calls"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn var_out_of_range_panics() {
        let mut m = mgr();
        let _ = m.var(4);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn unbalanced_ref_dec_panics() {
        let mut m = mgr();
        let a = m.var(0);
        m.ref_dec(a);
    }

    #[test]
    fn node_cap_reports_exhaustion() {
        let mut m = BddManager::with_node_cap(8, EngineProfile::Cached, 3);
        assert_eq!(m.node_cap(), Some(3));
        assert!(m.check_capacity().is_ok());
        let mut f = TRUE;
        for i in 0..8 {
            let v = m.var(i);
            f = m.and(f, v);
        }
        assert!(m.exhausted());
        match m.check_capacity() {
            Err(crate::BddError::TableExhausted { nodes, cap }) => {
                assert!(nodes > cap);
                assert_eq!(cap, 3);
            }
            other => panic!("expected TableExhausted, got {other:?}"),
        }
        // Absorption path: raise the cap and the manager keeps working.
        m.set_node_cap(Some(1 << 20));
        assert!(!m.exhausted());
        assert!(m.check_capacity().is_ok());
    }

    /// The workload shared by the hard-cap tests: a var chain under
    /// `try_*` ops ending in the tautology `f ∨ ¬f == TRUE`.
    fn try_workload(m: &mut BddManager) -> Result<Ref, crate::BddError> {
        let mut f = TRUE;
        for i in 0..m.num_vars() {
            let v = m.var(i);
            f = m.try_and(f, v)?;
        }
        let n = m.try_not(f)?;
        m.try_or(f, n)
    }

    #[test]
    fn try_ops_refuse_before_exceeding_cap() {
        // Measure the workload's exact node demand on an uncapped manager.
        let mut probe = BddManager::new(8, EngineProfile::Cached);
        assert_eq!(try_workload(&mut probe), Ok(TRUE));
        let need = probe.node_count();
        assert!(need > 2);

        // cap = need: the whole workload fits and never trips the cap.
        let mut exact = BddManager::with_node_cap(8, EngineProfile::Cached, need);
        assert_eq!(try_workload(&mut exact), Ok(TRUE));
        assert_eq!(exact.node_count(), need);
        assert!(exact.check_capacity().is_ok());

        // cap = need - 1: the workload must fail with a typed error —
        // and the table must have refused *before* exceeding the cap,
        // unlike the soft-cap path which only reports the overrun
        // after the fact.
        let cap = need - 1;
        let mut tight = BddManager::with_node_cap(8, EngineProfile::Cached, cap);
        match try_workload(&mut tight) {
            Err(crate::BddError::TableExhausted { nodes, cap: c }) => {
                assert_eq!(c, cap);
                assert!(nodes <= cap, "refusal must come before the cap is exceeded");
            }
            other => panic!("expected TableExhausted, got {other:?}"),
        }
        assert!(
            tight.node_count() <= cap,
            "hard cap violated: {} live nodes under cap {cap}",
            tight.node_count()
        );
        // check_capacity (the soft, after-the-fact probe) agrees the
        // cap was never crossed.
        assert!(tight.check_capacity().is_ok());

        // Absorption: raise the cap by one and the *same* manager
        // finishes the workload — nothing was wedged, and the memoised
        // subresults from the failed attempt are reused.
        tight.set_node_cap(Some(need));
        assert_eq!(try_workload(&mut tight), Ok(TRUE));
        assert_eq!(tight.node_count(), need);
    }

    #[test]
    fn manager_stays_usable_after_try_error() {
        // A tiny cap exhausts quickly…
        let mut m = BddManager::with_node_cap(8, EngineProfile::Cached, 3);
        assert!(try_workload(&mut m).is_err());
        // …but the manager still answers queries over already-built
        // structure (hash-cons/memo hits allocate nothing)…
        let a = m.var(0);
        let b = m.var(1);
        m.ref_inc(a);
        m.ref_inc(b);
        assert_eq!(m.try_and(a, b).map(|r| r == FALSE), Ok(false));
        // …the orphans from the failed attempt are ordinary garbage…
        m.gc();
        assert!(m.node_count() <= 3);
        // …and capacity-respecting work proceeds afterwards.
        let a = m.var(0);
        let b = m.var(1);
        assert!(m.try_and(a, b).is_ok());
    }

    #[test]
    fn try_ops_agree_with_infallible_ops() {
        let mut m = BddManager::new(6, EngineProfile::Cached);
        let a = m.var(0);
        let b = m.var(3);
        let and = m.and(a, b);
        let or = m.or(a, b);
        let diff = m.diff(a, b);
        let xor = m.xor(a, b);
        let not = m.not(a);
        assert_eq!(m.try_and(a, b), Ok(and));
        assert_eq!(m.try_or(a, b), Ok(or));
        assert_eq!(m.try_diff(a, b), Ok(diff));
        assert_eq!(m.try_xor(a, b), Ok(xor));
        assert_eq!(m.try_not(a), Ok(not));

        let mut u = BddManager::new(6, EngineProfile::Uncached);
        let a = u.var(0);
        let b = u.var(3);
        let diff = u.diff(a, b);
        assert_eq!(u.try_diff(a, b), Ok(diff), "uncached try_diff composes not+and");
    }

    #[test]
    fn memo_caches_are_bounded_and_count_evictions() {
        // Production geometry is fixed at construction and reported via
        // stats(); the caches can never outgrow it.
        let m = mgr();
        assert_eq!(m.stats().op_cache_capacity, OP_CACHE_WAYS);
        assert_eq!(m.stats().not_cache_capacity, NOT_CACHE_WAYS);
        assert_eq!(m.stats().cache_evictions, 0);

        // A deliberately tiny cache forces collisions: more distinct
        // memo keys than slots must evict (pigeonhole), while results
        // stay correct because lost entries only cause re-derivation
        // through the unique table.
        let mut tiny = BddManager::with_cache_ways(12, EngineProfile::Cached, 8, 4);
        let mut f = FALSE;
        for i in 0..12 {
            let v = tiny.var(i);
            let w = tiny.var((i + 5) % 12);
            let c = tiny.and(v, w);
            f = tiny.xor(f, c);
        }
        let nf = tiny.not(f);
        assert_eq!(tiny.xor(f, nf), TRUE);
        let s = tiny.stats();
        assert_eq!(s.op_cache_capacity, 8, "capacity must not grow under load");
        assert_eq!(s.not_cache_capacity, 4);
        assert!(s.apply_misses > 8, "workload must overflow the op cache");
        assert!(s.cache_evictions > 0, "colliding keys must be counted as evictions");

        // The same workload on a production-sized manager agrees on
        // every result (lossy replacement never changes semantics).
        let mut big = BddManager::new(12, EngineProfile::Cached);
        let mut g = FALSE;
        for i in 0..12 {
            let v = big.var(i);
            let w = big.var((i + 5) % 12);
            let c = big.and(v, w);
            g = big.xor(g, c);
        }
        assert_eq!(g, f, "tiny-cache and big-cache managers must mint identically");
    }

    #[test]
    fn uncapped_manager_never_exhausts() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let _ = m.and(a, b);
        assert_eq!(m.node_cap(), None);
        assert!(!m.exhausted());
        assert!(m.check_capacity().is_ok());
    }
}
