//! Model counting and witness extraction.

use crate::manager::BddManager;
use crate::node::{Ref, FALSE, TRUE};
use std::collections::HashMap;

impl BddManager {
    /// Fraction of the full assignment space that satisfies `r`, in
    /// `[0, 1]`. Computed as `p(node) = (p(low) + p(high)) / 2`, which is
    /// exact in `f64` for the header widths the verifiers use.
    pub fn sat_fraction(&self, r: Ref) -> f64 {
        let mut memo: HashMap<u32, f64> = HashMap::new();
        self.fraction_rec(r.0, &mut memo)
    }

    /// Number of satisfying assignments over the manager's full variable
    /// universe, as an `f64` (counts overflow `u64` beyond 64 variables;
    /// header spaces routinely use 32–104 bits).
    pub fn sat_count(&self, r: Ref) -> f64 {
        self.sat_fraction(r) * 2f64.powi(self.num_vars() as i32)
    }

    fn fraction_rec(&self, r: u32, memo: &mut HashMap<u32, f64>) -> f64 {
        match r {
            0 => return 0.0,
            1 => return 1.0,
            _ => {}
        }
        if let Some(&c) = memo.get(&r) {
            return c;
        }
        let (_var, low, high) = self.node_parts(r);
        let c = 0.5 * self.fraction_rec(low, memo) + 0.5 * self.fraction_rec(high, memo);
        memo.insert(r, c);
        c
    }

    /// One satisfying assignment, or `None` if `r` is unsatisfiable.
    /// Variables not on the witness path default to `false`.
    pub fn any_sat(&self, r: Ref) -> Option<Vec<bool>> {
        if r == FALSE {
            return None;
        }
        let mut assignment = vec![false; self.num_vars() as usize];
        let mut cur = r.0;
        while cur > 1 {
            let (var, low, high) = self.node_parts(cur);
            if low != FALSE.0 {
                assignment[var as usize] = false;
                cur = low;
            } else {
                assignment[var as usize] = true;
                cur = high;
            }
        }
        debug_assert_eq!(cur, TRUE.0);
        Some(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::EngineProfile;

    fn mgr(n: u32) -> BddManager {
        BddManager::new(n, EngineProfile::Cached)
    }

    #[test]
    fn satcount_of_terminals() {
        let m = mgr(4);
        assert_eq!(m.sat_count(FALSE), 0.0);
        assert_eq!(m.sat_count(TRUE), 16.0);
    }

    #[test]
    fn satcount_single_variable_is_half_space() {
        let mut m = mgr(5);
        let a = m.var(3);
        assert_eq!(m.sat_count(a), 16.0);
        assert_eq!(m.sat_fraction(a), 0.5);
    }

    #[test]
    fn satcount_conjunction_halves() {
        let mut m = mgr(6);
        let mut f = TRUE;
        for i in 0..4 {
            let v = m.var(i);
            f = m.and(f, v);
        }
        assert_eq!(m.sat_count(f), 4.0); // 2 free variables
    }

    #[test]
    fn satcount_or_inclusion_exclusion() {
        let mut m = mgr(3);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.or(a, b);
        // |a|+|b|-|a&b| = 4+4-2 = 6
        assert_eq!(m.sat_count(f), 6.0);
    }

    #[test]
    fn any_sat_returns_witness() {
        let mut m = mgr(4);
        let a = m.var(0);
        let nb = m.nvar(1);
        let f = m.and(a, nb);
        let w = m.any_sat(f).expect("satisfiable");
        assert_eq!(m.eval(f, &w), Ok(true));
        assert!(w[0]);
        assert!(!w[1]);
    }

    #[test]
    fn any_sat_none_for_false() {
        let m = mgr(4);
        assert!(m.any_sat(FALSE).is_none());
    }
}
