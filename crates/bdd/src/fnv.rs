//! A deterministic FNV-1a hasher for the manager's internal tables.
//!
//! The unique table and the memo caches are keyed by node indices we
//! mint ourselves, so SipHash's DoS resistance buys nothing here — but
//! its per-lookup cost is very visible, because `apply` does one or two
//! map probes per recursive call. FNV-1a over a handful of bytes is
//! several times cheaper and, unlike `RandomState`, has no per-process
//! seed: a manager performs byte-identical work on every run, which
//! keeps the engine inside the workspace's determinism envelope.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a state.
pub(crate) struct FnvHasher(u64);

impl Hasher for FnvHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Zero-sized, seedless [`BuildHasher`]: every map built with it hashes
/// identically in every process.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct FnvBuildHasher;

impl BuildHasher for FnvBuildHasher {
    type Hasher = FnvHasher;

    #[inline]
    fn build_hasher(&self) -> FnvHasher {
        FnvHasher(FNV_OFFSET)
    }
}

/// A `HashMap` with the deterministic FNV hasher.
pub(crate) type FnvMap<K, V> = HashMap<K, V, FnvBuildHasher>;

/// An empty [`FnvMap`] pre-sized for `cap` entries.
pub(crate) fn map_with_capacity<K, V>(cap: usize) -> FnvMap<K, V> {
    HashMap::with_capacity_and_hasher(cap, FnvBuildHasher)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_stable_and_distinct() {
        let build = FnvBuildHasher;
        let one = build.hash_one((0u32, 1u32, 2u32));
        let again = build.hash_one((0u32, 1u32, 2u32));
        let other = build.hash_one((0u32, 2u32, 1u32));
        assert_eq!(one, again);
        assert_ne!(one, other);
    }

    #[test]
    fn map_round_trips() {
        let mut m: FnvMap<u32, u32> = map_with_capacity(16);
        assert!(m.capacity() >= 16);
        m.insert(7, 42);
        assert_eq!(m.get(&7), Some(&42));
    }
}
