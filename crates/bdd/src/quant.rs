//! Quantification and cofactors: `∃`, `∀`, `restrict` and variable
//! support.
//!
//! Multi-field verification needs these: projecting a transfer
//! relation onto the destination field is an existential
//! quantification over every other field's variables.

use crate::manager::BddManager;
use crate::node::Ref;
use std::collections::HashMap;

impl BddManager {
    /// Existential quantification: `∃ vars . f`.
    pub fn exists(&mut self, f: Ref, vars: &[u32]) -> Ref {
        let mask = self.var_mask(vars);
        let mut memo = HashMap::new();
        Ref(self.quant_rec(f.0, &mask, true, &mut memo))
    }

    /// Universal quantification: `∀ vars . f`.
    pub fn forall(&mut self, f: Ref, vars: &[u32]) -> Ref {
        let mask = self.var_mask(vars);
        let mut memo = HashMap::new();
        Ref(self.quant_rec(f.0, &mask, false, &mut memo))
    }

    fn var_mask(&self, vars: &[u32]) -> Vec<bool> {
        let mut mask = vec![false; self.num_vars() as usize];
        for &v in vars {
            assert!(v < self.num_vars(), "variable {v} out of range");
            mask[v as usize] = true;
        }
        mask
    }

    fn quant_rec(
        &mut self,
        f: u32,
        mask: &[bool],
        existential: bool,
        memo: &mut HashMap<u32, u32>,
    ) -> u32 {
        if f <= 1 {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let (var, low, high) = self.node_parts(f);
        let l = self.quant_rec(low, mask, existential, memo);
        let h = self.quant_rec(high, mask, existential, memo);
        let r = if mask[var as usize] {
            // Protect the halves across the combining op (it may GC).
            let lr = Ref(l);
            let hr = Ref(h);
            self.ref_inc(lr);
            self.ref_inc(hr);
            let combined = if existential { self.or(lr, hr) } else { self.and(lr, hr) };
            self.ref_dec(lr);
            self.ref_dec(hr);
            combined.0
        } else if l == h {
            l
        } else {
            self.table_mk(var, l, h)
        };
        memo.insert(f, r);
        r
    }

    /// Cofactor: `f` with each `(var, value)` substituted.
    pub fn restrict(&mut self, f: Ref, assignment: &[(u32, bool)]) -> Ref {
        let mut values: Vec<Option<bool>> = vec![None; self.num_vars() as usize];
        for &(v, b) in assignment {
            assert!(v < self.num_vars(), "variable {v} out of range");
            values[v as usize] = Some(b);
        }
        let mut memo = HashMap::new();
        Ref(self.restrict_rec(f.0, &values, &mut memo))
    }

    fn restrict_rec(
        &mut self,
        f: u32,
        values: &[Option<bool>],
        memo: &mut HashMap<u32, u32>,
    ) -> u32 {
        if f <= 1 {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let (var, low, high) = self.node_parts(f);
        let r = match values[var as usize] {
            Some(false) => self.restrict_rec(low, values, memo),
            Some(true) => self.restrict_rec(high, values, memo),
            None => {
                let l = self.restrict_rec(low, values, memo);
                let h = self.restrict_rec(high, values, memo);
                if l == h {
                    l
                } else {
                    self.table_mk(var, l, h)
                }
            }
        };
        memo.insert(f, r);
        r
    }

    /// The set of variables `f` actually depends on, ascending.
    pub fn support(&self, f: Ref) -> Vec<u32> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f.0];
        while let Some(n) = stack.pop() {
            if n <= 1 || !seen.insert(n) {
                continue;
            }
            let (var, low, high) = self.node_parts(n);
            vars.insert(var);
            stack.push(low);
            stack.push(high);
        }
        vars.into_iter().collect()
    }

    /// Number of distinct nodes reachable from `f` (BDD size).
    pub fn size_of(&self, f: Ref) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.0];
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if n <= 1 || !seen.insert(n) {
                continue;
            }
            count += 1;
            let (_, low, high) = self.node_parts(n);
            stack.push(low);
            stack.push(high);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::EngineProfile;
    use crate::node::{FALSE, TRUE};

    fn mgr(n: u32) -> BddManager {
        BddManager::new(n, EngineProfile::Cached)
    }

    #[test]
    fn exists_removes_the_variable() {
        let mut m = mgr(4);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        let e = m.exists(f, &[0]);
        assert_eq!(e, b, "∃a. a∧b == b");
        assert_eq!(m.support(e), vec![1]);
    }

    #[test]
    fn forall_of_conjunction_is_false_on_free_var() {
        let mut m = mgr(4);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        assert_eq!(m.forall(f, &[0]), FALSE, "∀a. a∧b == false");
        let g = m.or(a, b);
        assert_eq!(m.forall(g, &[0]), b, "∀a. a∨b == b");
    }

    #[test]
    fn exists_forall_duality() {
        let mut m = mgr(5);
        let a = m.var(0);
        let c = m.var(2);
        let f = m.xor(a, c);
        // ∃x.f == ¬∀x.¬f
        let lhs = m.exists(f, &[0, 2]);
        let nf = m.not(f);
        let fa = m.forall(nf, &[0, 2]);
        let rhs = m.not(fa);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn quantifying_all_support_yields_terminal() {
        let mut m = mgr(4);
        let a = m.var(0);
        let b = m.var(3);
        let f = m.and(a, b);
        assert_eq!(m.exists(f, &[0, 1, 2, 3]), TRUE);
        assert_eq!(m.forall(f, &[0, 1, 2, 3]), FALSE);
    }

    #[test]
    fn restrict_is_shannon_cofactor() {
        let mut m = mgr(4);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.ite(a, b, FALSE); // a ? b : 0 == a&b
        assert_eq!(m.restrict(f, &[(0, true)]), b);
        assert_eq!(m.restrict(f, &[(0, false)]), FALSE);
        assert_eq!(m.restrict(f, &[(0, true), (1, true)]), TRUE);
    }

    #[test]
    fn restrict_on_absent_variable_is_identity() {
        let mut m = mgr(4);
        let a = m.var(0);
        assert_eq!(m.restrict(a, &[(3, true)]), a);
    }

    #[test]
    fn support_and_size() {
        let mut m = mgr(6);
        let f = m.field_eq(1, 3, 0b101);
        assert_eq!(m.support(f), vec![1, 2, 3]);
        assert_eq!(m.size_of(f), 3, "a cube has one node per literal");
        assert_eq!(m.size_of(TRUE), 0);
    }

    #[test]
    fn exists_distributes_over_or() {
        let mut m = mgr(4);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let f = m.and(a, b);
        let g = m.and(a, c);
        let fg = m.or(f, g);
        let lhs = m.exists(fg, &[0]);
        let ef = m.exists(f, &[0]);
        let eg = m.exists(g, &[0]);
        let rhs = m.or(ef, eg);
        assert_eq!(lhs, rhs);
    }
}
