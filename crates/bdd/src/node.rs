//! Node storage: the hash-consed unique table with reference counting.
//!
//! Layout follows the classic BDD-package design (Brace–Rudell–Bryant,
//! and the JDD library the paper's participants used): nodes live in a
//! flat arena indexed by [`Ref`], terminals occupy slots 0 and 1, and a
//! unique table guarantees that structurally equal nodes are shared.
//!
//! The unique table is a power-of-two open-addressing array of arena
//! indices with triple-hashed linear probing — the node key `(var, low,
//! high)` is never stored twice, probes read it straight out of the
//! arena. Hash-cons semantics are identical to a `(var, low, high) →
//! index` map (locked in by the proptest against an `FnvMap` reference
//! below), so mint order — and therefore every `Ref` this crate ever
//! hands out — is a canonical function of the `mk` call stream alone.

/// A handle to a BDD node. `Ref`s are only meaningful relative to the
/// [`crate::BddManager`] that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(pub(crate) u32);

impl Ref {
    /// The raw arena index of this reference.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is one of the two terminal nodes.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }
}

/// The constant-false BDD.
pub const FALSE: Ref = Ref(0);
/// The constant-true BDD.
pub const TRUE: Ref = Ref(1);

/// Sentinel variable index used by the terminal nodes so that they sort
/// below every real variable during `apply`.
pub(crate) const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    pub var: u32,
    pub low: u32,
    pub high: u32,
    /// External reference count. Nodes with `refs > 0` (and everything
    /// they reach) survive garbage collection.
    pub refs: u32,
    pub alive: bool,
}

/// Initial arena/unique-table sizing. The verification workloads mint
/// a few thousand nodes per header set; pre-sizing skips the rehash
/// cascade that dominated `Manager::new`-heavy profiles.
pub(crate) const INITIAL_NODES: usize = 1 << 12;

/// Empty-slot sentinel in the unique table. Arena indices never reach
/// `u32::MAX` (the arena would exhaust memory long before).
const EMPTY_SLOT: u32 = u32::MAX;

/// Triple-hash the node key: each component gets its own odd 64-bit
/// multiplier, then a splitmix-style avalanche spreads the entropy into
/// the low bits that the power-of-two mask keeps. The constants and the
/// probe order are fixed, so slot layout — and more importantly the
/// hit/miss behaviour of `mk` — is a pure function of the key stream.
#[inline]
fn hash_triple(var: u32, low: u32, high: u32) -> u64 {
    let mut h = (var as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= (low as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    h ^= (high as u64).wrapping_mul(0x1656_67B1_9E37_79F9);
    h ^= h >> 29;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^ (h >> 32)
}

/// Open-addressed set of arena indices keyed by the node triple stored
/// in the arena itself. Linear probing, power-of-two capacity, resize
/// at 3/4 load. No tombstones: deletion only happens wholesale during
/// GC, which rebuilds the table from the arena in index order.
#[derive(Debug)]
struct UniqueTable {
    slots: Box<[u32]>,
    mask: u64,
    len: usize,
}

impl UniqueTable {
    fn with_pow2_slots(slots: usize) -> Self {
        debug_assert!(slots.is_power_of_two());
        UniqueTable {
            slots: vec![EMPTY_SLOT; slots].into_boxed_slice(),
            mask: (slots - 1) as u64,
            len: 0,
        }
    }

    /// Find the arena index holding `(var, low, high)`, if any.
    #[inline]
    fn lookup(&self, nodes: &[Node], var: u32, low: u32, high: u32) -> Option<u32> {
        let mut i = (hash_triple(var, low, high) & self.mask) as usize;
        loop {
            let s = self.slots[i];
            if s == EMPTY_SLOT {
                return None;
            }
            let n = &nodes[s as usize];
            if n.var == var && n.low == low && n.high == high {
                return Some(s);
            }
            i = (i + 1) & self.mask as usize;
        }
    }

    /// Insert `idx` (whose key must be absent). The node must already
    /// be written to `nodes[idx]` so probing can read its key.
    fn insert(&mut self, nodes: &[Node], idx: u32) {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow(nodes);
        }
        let n = &nodes[idx as usize];
        let mut i = (hash_triple(n.var, n.low, n.high) & self.mask) as usize;
        while self.slots[i] != EMPTY_SLOT {
            i = (i + 1) & self.mask as usize;
        }
        self.slots[i] = idx;
        self.len += 1;
    }

    fn grow(&mut self, nodes: &[Node]) {
        let doubled = vec![EMPTY_SLOT; self.slots.len() * 2].into_boxed_slice();
        let old = std::mem::replace(&mut self.slots, doubled);
        self.mask = (self.slots.len() - 1) as u64;
        for &idx in old.iter() {
            if idx == EMPTY_SLOT {
                continue;
            }
            let n = &nodes[idx as usize];
            let mut i = (hash_triple(n.var, n.low, n.high) & self.mask) as usize;
            while self.slots[i] != EMPTY_SLOT {
                i = (i + 1) & self.mask as usize;
            }
            self.slots[i] = idx;
        }
    }

    /// Re-hash every live non-terminal node after a GC sweep. Arena
    /// index order makes the rebuilt layout deterministic (and lookup
    /// results never depended on layout to begin with).
    fn rebuild(&mut self, nodes: &[Node]) {
        self.slots.fill(EMPTY_SLOT);
        self.len = 0;
        for (i, n) in nodes.iter().enumerate().skip(2) {
            if !n.alive {
                continue;
            }
            let mut s = (hash_triple(n.var, n.low, n.high) & self.mask) as usize;
            while self.slots[s] != EMPTY_SLOT {
                s = (s + 1) & self.mask as usize;
            }
            self.slots[s] = i as u32;
            self.len += 1;
        }
    }
}

/// The node arena plus the unique (hash-consing) table.
#[derive(Debug)]
pub(crate) struct NodeTable {
    nodes: Vec<Node>,
    unique: UniqueTable,
    free: Vec<u32>,
    /// Live non-terminal node count, maintained incrementally so the
    /// per-`mk` capacity check in [`NodeTable::mk_capped`] is O(1)
    /// instead of an O(n) arena scan.
    live: usize,
}

impl NodeTable {
    pub fn new() -> Self {
        let terminal = |_v: u32| Node {
            var: TERMINAL_VAR,
            low: 0,
            high: 0,
            refs: 1, // terminals are permanently alive
            alive: true,
        };
        let mut nodes = Vec::with_capacity(INITIAL_NODES + 2);
        nodes.push(terminal(0));
        nodes.push(terminal(1));
        NodeTable {
            nodes,
            // 2× the arena pre-size keeps the load factor under 1/2
            // until the arena itself has to grow.
            unique: UniqueTable::with_pow2_slots(INITIAL_NODES * 2),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Find-or-create the node `(var, low, high)`. Callers must have
    /// already applied the ROBDD reduction rule (`low != high`).
    pub fn mk(&mut self, var: u32, low: u32, high: u32) -> u32 {
        debug_assert_ne!(low, high, "reduction rule violated");
        if let Some(idx) = self.unique.lookup(&self.nodes, var, low, high) {
            return idx;
        }
        self.mint(var, low, high)
    }

    /// Like [`NodeTable::mk`], but refuses to mint a *new* node once
    /// `cap` live nodes exist. Hash-cons hits always succeed — looking
    /// up an existing node allocates nothing, so a full table can still
    /// answer queries over already-built structure. Returns `Err(live)`
    /// (the current live count) when minting would exceed the cap, and
    /// leaves the table untouched in that case.
    pub fn mk_capped(&mut self, var: u32, low: u32, high: u32, cap: usize) -> Result<u32, usize> {
        debug_assert_ne!(low, high, "reduction rule violated");
        if let Some(idx) = self.unique.lookup(&self.nodes, var, low, high) {
            return Ok(idx);
        }
        if self.live >= cap {
            return Err(self.live);
        }
        Ok(self.mint(var, low, high))
    }

    fn mint(&mut self, var: u32, low: u32, high: u32) -> u32 {
        let node = Node { var, low, high, refs: 0, alive: true };
        let idx = if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(node);
            idx
        };
        self.unique.insert(&self.nodes, idx);
        self.live += 1;
        idx
    }

    pub fn get(&self, idx: u32) -> &Node {
        &self.nodes[idx as usize]
    }

    pub fn get_mut(&mut self, idx: u32) -> &mut Node {
        &mut self.nodes[idx as usize]
    }

    /// Number of live (reachable-or-not) non-terminal nodes. O(1): the
    /// count is maintained incrementally by `mk`/`gc` (consistency with
    /// the arena is locked in by `live_counter_tracks_arena_scan`).
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// O(n) arena scan of live non-terminal nodes; test-only oracle for
    /// the incremental counter.
    #[cfg(test)]
    pub fn live_count_scan(&self) -> usize {
        self.nodes.iter().skip(2).filter(|n| n.alive).count()
    }

    pub fn capacity(&self) -> usize {
        self.nodes.len()
    }

    /// Mark-and-sweep garbage collection. Roots are all nodes with a
    /// positive external reference count. Returns the number of reclaimed
    /// nodes. The caller is responsible for clearing any memo caches that
    /// might reference reclaimed nodes.
    ///
    /// The open-addressed unique table has no per-key deletion (no
    /// tombstones); the sweep rebuilds it from the surviving arena in
    /// index order instead, which is both deterministic and cheaper
    /// than N probe-chain repairs.
    pub fn gc(&mut self) -> usize {
        let mut marked = vec![false; self.nodes.len()];
        marked[0] = true;
        marked[1] = true;
        let mut stack: Vec<u32> = Vec::new();
        for (i, n) in self.nodes.iter().enumerate().skip(2) {
            if n.alive && n.refs > 0 {
                stack.push(i as u32);
            }
        }
        while let Some(i) = stack.pop() {
            if marked[i as usize] {
                continue;
            }
            marked[i as usize] = true;
            let n = &self.nodes[i as usize];
            stack.push(n.low);
            stack.push(n.high);
        }
        let mut reclaimed = 0;
        for (i, &kept) in marked.iter().enumerate().skip(2) {
            if self.nodes[i].alive && !kept {
                self.nodes[i].alive = false;
                self.free.push(i as u32);
                reclaimed += 1;
            }
        }
        if reclaimed > 0 {
            self.unique.rebuild(&self.nodes);
        }
        self.live -= reclaimed;
        reclaimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fnv::FnvMap;
    use proptest::prelude::*;

    #[test]
    fn terminals_are_preallocated() {
        let t = NodeTable::new();
        assert!(t.get(0).alive);
        assert!(t.get(1).alive);
        assert_eq!(t.live_count(), 0);
    }

    #[test]
    fn mk_is_hash_consed() {
        let mut t = NodeTable::new();
        let a = t.mk(0, 0, 1);
        let b = t.mk(0, 0, 1);
        assert_eq!(a, b);
        assert_eq!(t.live_count(), 1);
    }

    #[test]
    fn gc_reclaims_unreferenced_nodes() {
        let mut t = NodeTable::new();
        let a = t.mk(0, 0, 1);
        let _b = t.mk(1, 0, 1);
        t.get_mut(a).refs = 1;
        let reclaimed = t.gc();
        assert_eq!(reclaimed, 1);
        assert!(t.get(a).alive);
        assert_eq!(t.live_count(), 1);
    }

    #[test]
    fn gc_keeps_descendants_of_roots() {
        let mut t = NodeTable::new();
        let child = t.mk(1, 0, 1);
        let parent = t.mk(0, 0, child);
        t.get_mut(parent).refs = 1;
        assert_eq!(t.gc(), 0);
        assert!(t.get(child).alive);
    }

    #[test]
    fn live_counter_tracks_arena_scan() {
        let mut t = NodeTable::new();
        assert_eq!(t.live_count(), t.live_count_scan());
        let a = t.mk(0, 0, 1);
        let child = t.mk(2, 0, 1);
        let _parent = t.mk(1, 0, child);
        let _dup = t.mk(0, 0, 1); // hash-cons hit must not bump the counter
        assert_eq!(t.live_count(), 3);
        assert_eq!(t.live_count(), t.live_count_scan());
        t.get_mut(a).refs = 1;
        t.gc();
        assert_eq!(t.live_count(), t.live_count_scan());
        let _again = t.mk(2, 0, 1); // reuse a freed slot; counter goes back up
        assert_eq!(t.live_count(), t.live_count_scan());
    }

    #[test]
    fn mk_capped_refuses_before_minting() {
        let mut t = NodeTable::new();
        let a = t.mk_capped(0, 0, 1, 2).expect("below cap");
        let _b = t.mk_capped(1, 0, 1, 2).expect("at cap boundary");
        // cap reached: a hash-cons hit still succeeds…
        assert_eq!(t.mk_capped(0, 0, 1, 2), Ok(a));
        // …but a new node is refused, and nothing was allocated.
        assert_eq!(t.mk_capped(2, 0, 1, 2), Err(2));
        assert_eq!(t.live_count(), 2);
        assert_eq!(t.live_count(), t.live_count_scan());
        // A higher cap admits the node that was just refused.
        assert!(t.mk_capped(2, 0, 1, 3).is_ok());
        assert_eq!(t.live_count(), 3);
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut t = NodeTable::new();
        let a = t.mk(0, 0, 1);
        t.gc();
        let b = t.mk(5, 0, 1);
        assert_eq!(a, b, "freed slot should be recycled");
    }

    #[test]
    fn gc_rebuild_keeps_survivors_findable() {
        let mut t = NodeTable::new();
        let child = t.mk(3, 0, 1);
        let parent = t.mk(1, 0, child);
        let orphan = t.mk(2, 1, 0);
        t.get_mut(parent).refs = 1;
        assert_eq!(t.gc(), 1);
        // Survivors still hash-cons to their original indices after the
        // table rebuild…
        assert_eq!(t.mk(3, 0, 1), child);
        assert_eq!(t.mk(1, 0, child), parent);
        // …and the reclaimed key mints a fresh node in the freed slot.
        assert_eq!(t.mk(2, 1, 0), orphan);
        assert_eq!(t.live_count(), t.live_count_scan());
    }

    #[test]
    fn table_grows_past_initial_sizing() {
        // Mint enough distinct nodes to force several unique-table
        // resizes and at least one arena regrowth.
        let mut t = NodeTable::new();
        let n = (INITIAL_NODES * 2) as u32;
        let mut idxs = Vec::new();
        for v in 0..n {
            idxs.push(t.mk(v, 0, 1));
        }
        assert_eq!(t.live_count(), n as usize);
        // Every node is still findable (pure hash-cons hits).
        for (v, &idx) in idxs.iter().enumerate() {
            assert_eq!(t.mk(v as u32, 0, 1), idx);
        }
        assert_eq!(t.live_count(), n as usize);
    }

    proptest! {
        /// The flat open-addressed unique table must mint the exact
        /// same `Ref` sequence as the tuple-keyed `FnvMap` it replaced,
        /// on arbitrary `mk` streams whose operands reference earlier
        /// results. This is the determinism contract: node numbering is
        /// a canonical function of the call stream, independent of hash
        /// layout.
        #[test]
        fn flat_unique_table_matches_fnv_map_reference(
            ops in proptest::collection::vec(
                (0u32..24, any::<u32>(), any::<u32>()),
                1..400,
            )
        ) {
            let mut t = NodeTable::new();
            let mut reference: FnvMap<(u32, u32, u32), u32> = FnvMap::default();
            let mut next_idx = 2u32;
            let mut handles: Vec<u32> = vec![0, 1];
            for (var, lo_sel, hi_sel) in ops {
                let low = handles[lo_sel as usize % handles.len()];
                let mut high = handles[hi_sel as usize % handles.len()];
                if high == low {
                    // keep the reduction rule: pick the other terminal
                    high = if low == 0 { 1 } else { 0 };
                }
                let got = t.mk(var, low, high);
                let want = *reference.entry((var, low, high)).or_insert_with(|| {
                    let i = next_idx;
                    next_idx += 1;
                    i
                });
                prop_assert_eq!(got, want, "mk({}, {}, {}) diverged", var, low, high);
                handles.push(got);
            }
            prop_assert_eq!(t.live_count(), reference.len());
            prop_assert_eq!(t.live_count(), t.live_count_scan());
        }
    }
}
