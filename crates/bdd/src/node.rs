//! Node storage: the hash-consed unique table with reference counting.
//!
//! Layout follows the classic BDD-package design (Brace–Rudell–Bryant,
//! and the JDD library the paper's participants used): nodes live in a
//! flat arena indexed by [`Ref`], terminals occupy slots 0 and 1, and a
//! unique table guarantees that structurally equal nodes are shared.

use crate::fnv::{map_with_capacity, FnvMap};

/// A handle to a BDD node. `Ref`s are only meaningful relative to the
/// [`crate::BddManager`] that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(pub(crate) u32);

impl Ref {
    /// The raw arena index of this reference.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is one of the two terminal nodes.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }
}

/// The constant-false BDD.
pub const FALSE: Ref = Ref(0);
/// The constant-true BDD.
pub const TRUE: Ref = Ref(1);

/// Sentinel variable index used by the terminal nodes so that they sort
/// below every real variable during `apply`.
pub(crate) const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    pub var: u32,
    pub low: u32,
    pub high: u32,
    /// External reference count. Nodes with `refs > 0` (and everything
    /// they reach) survive garbage collection.
    pub refs: u32,
    pub alive: bool,
}

/// Initial arena/unique-table sizing. The verification workloads mint
/// a few thousand nodes per header set; pre-sizing skips the rehash
/// cascade that dominated `Manager::new`-heavy profiles.
pub(crate) const INITIAL_NODES: usize = 1 << 12;

/// The node arena plus the unique (hash-consing) table.
#[derive(Debug)]
pub(crate) struct NodeTable {
    nodes: Vec<Node>,
    unique: FnvMap<(u32, u32, u32), u32>,
    free: Vec<u32>,
    /// Live non-terminal node count, maintained incrementally so the
    /// per-`mk` capacity check in [`NodeTable::mk_capped`] is O(1)
    /// instead of an O(n) arena scan.
    live: usize,
}

impl NodeTable {
    pub fn new() -> Self {
        let terminal = |_v: u32| Node {
            var: TERMINAL_VAR,
            low: 0,
            high: 0,
            refs: 1, // terminals are permanently alive
            alive: true,
        };
        let mut nodes = Vec::with_capacity(INITIAL_NODES + 2);
        nodes.push(terminal(0));
        nodes.push(terminal(1));
        NodeTable {
            nodes,
            unique: map_with_capacity(INITIAL_NODES),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Find-or-create the node `(var, low, high)`. Callers must have
    /// already applied the ROBDD reduction rule (`low != high`).
    pub fn mk(&mut self, var: u32, low: u32, high: u32) -> u32 {
        debug_assert_ne!(low, high, "reduction rule violated");
        if let Some(&idx) = self.unique.get(&(var, low, high)) {
            return idx;
        }
        self.mint(var, low, high)
    }

    /// Like [`NodeTable::mk`], but refuses to mint a *new* node once
    /// `cap` live nodes exist. Hash-cons hits always succeed — looking
    /// up an existing node allocates nothing, so a full table can still
    /// answer queries over already-built structure. Returns `Err(live)`
    /// (the current live count) when minting would exceed the cap, and
    /// leaves the table untouched in that case.
    pub fn mk_capped(&mut self, var: u32, low: u32, high: u32, cap: usize) -> Result<u32, usize> {
        debug_assert_ne!(low, high, "reduction rule violated");
        if let Some(&idx) = self.unique.get(&(var, low, high)) {
            return Ok(idx);
        }
        if self.live >= cap {
            return Err(self.live);
        }
        Ok(self.mint(var, low, high))
    }

    fn mint(&mut self, var: u32, low: u32, high: u32) -> u32 {
        let node = Node { var, low, high, refs: 0, alive: true };
        let idx = if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(node);
            idx
        };
        self.unique.insert((var, low, high), idx);
        self.live += 1;
        idx
    }

    pub fn get(&self, idx: u32) -> &Node {
        &self.nodes[idx as usize]
    }

    pub fn get_mut(&mut self, idx: u32) -> &mut Node {
        &mut self.nodes[idx as usize]
    }

    /// Number of live (reachable-or-not) non-terminal nodes. O(1): the
    /// count is maintained incrementally by `mk`/`gc` (consistency with
    /// the arena is locked in by `live_counter_tracks_arena_scan`).
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// O(n) arena scan of live non-terminal nodes; test-only oracle for
    /// the incremental counter.
    #[cfg(test)]
    pub fn live_count_scan(&self) -> usize {
        self.nodes.iter().skip(2).filter(|n| n.alive).count()
    }

    pub fn capacity(&self) -> usize {
        self.nodes.len()
    }

    /// Mark-and-sweep garbage collection. Roots are all nodes with a
    /// positive external reference count. Returns the number of reclaimed
    /// nodes. The caller is responsible for clearing any memo caches that
    /// might reference reclaimed nodes.
    pub fn gc(&mut self) -> usize {
        let mut marked = vec![false; self.nodes.len()];
        marked[0] = true;
        marked[1] = true;
        let mut stack: Vec<u32> = Vec::new();
        for (i, n) in self.nodes.iter().enumerate().skip(2) {
            if n.alive && n.refs > 0 {
                stack.push(i as u32);
            }
        }
        while let Some(i) = stack.pop() {
            if marked[i as usize] {
                continue;
            }
            marked[i as usize] = true;
            let n = &self.nodes[i as usize];
            stack.push(n.low);
            stack.push(n.high);
        }
        let mut reclaimed = 0;
        for (i, &kept) in marked.iter().enumerate().skip(2) {
            if self.nodes[i].alive && !kept {
                let n = self.nodes[i];
                self.unique.remove(&(n.var, n.low, n.high));
                self.nodes[i].alive = false;
                self.free.push(i as u32);
                reclaimed += 1;
            }
        }
        self.live -= reclaimed;
        reclaimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_preallocated() {
        let t = NodeTable::new();
        assert!(t.get(0).alive);
        assert!(t.get(1).alive);
        assert_eq!(t.live_count(), 0);
    }

    #[test]
    fn mk_is_hash_consed() {
        let mut t = NodeTable::new();
        let a = t.mk(0, 0, 1);
        let b = t.mk(0, 0, 1);
        assert_eq!(a, b);
        assert_eq!(t.live_count(), 1);
    }

    #[test]
    fn gc_reclaims_unreferenced_nodes() {
        let mut t = NodeTable::new();
        let a = t.mk(0, 0, 1);
        let _b = t.mk(1, 0, 1);
        t.get_mut(a).refs = 1;
        let reclaimed = t.gc();
        assert_eq!(reclaimed, 1);
        assert!(t.get(a).alive);
        assert_eq!(t.live_count(), 1);
    }

    #[test]
    fn gc_keeps_descendants_of_roots() {
        let mut t = NodeTable::new();
        let child = t.mk(1, 0, 1);
        let parent = t.mk(0, 0, child);
        t.get_mut(parent).refs = 1;
        assert_eq!(t.gc(), 0);
        assert!(t.get(child).alive);
    }

    #[test]
    fn live_counter_tracks_arena_scan() {
        let mut t = NodeTable::new();
        assert_eq!(t.live_count(), t.live_count_scan());
        let a = t.mk(0, 0, 1);
        let child = t.mk(2, 0, 1);
        let _parent = t.mk(1, 0, child);
        let _dup = t.mk(0, 0, 1); // hash-cons hit must not bump the counter
        assert_eq!(t.live_count(), 3);
        assert_eq!(t.live_count(), t.live_count_scan());
        t.get_mut(a).refs = 1;
        t.gc();
        assert_eq!(t.live_count(), t.live_count_scan());
        let _again = t.mk(2, 0, 1); // reuse a freed slot; counter goes back up
        assert_eq!(t.live_count(), t.live_count_scan());
    }

    #[test]
    fn mk_capped_refuses_before_minting() {
        let mut t = NodeTable::new();
        let a = t.mk_capped(0, 0, 1, 2).expect("below cap");
        let _b = t.mk_capped(1, 0, 1, 2).expect("at cap boundary");
        // cap reached: a hash-cons hit still succeeds…
        assert_eq!(t.mk_capped(0, 0, 1, 2), Ok(a));
        // …but a new node is refused, and nothing was allocated.
        assert_eq!(t.mk_capped(2, 0, 1, 2), Err(2));
        assert_eq!(t.live_count(), 2);
        assert_eq!(t.live_count(), t.live_count_scan());
        // A higher cap admits the node that was just refused.
        assert!(t.mk_capped(2, 0, 1, 3).is_ok());
        assert_eq!(t.live_count(), 3);
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut t = NodeTable::new();
        let a = t.mk(0, 0, 1);
        t.gc();
        let b = t.mk(5, 0, 1);
        assert_eq!(a, b, "freed slot should be recycled");
    }
}
