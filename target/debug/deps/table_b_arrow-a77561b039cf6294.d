/root/repo/target/debug/deps/table_b_arrow-a77561b039cf6294.d: crates/bench/src/bin/table_b_arrow.rs

/root/repo/target/debug/deps/table_b_arrow-a77561b039cf6294: crates/bench/src/bin/table_b_arrow.rs

crates/bench/src/bin/table_b_arrow.rs:
