/root/repo/target/debug/deps/fig5_loc-dade654dbabbbb8d.d: crates/bench/src/bin/fig5_loc.rs

/root/repo/target/debug/deps/fig5_loc-dade654dbabbbb8d: crates/bench/src/bin/fig5_loc.rs

crates/bench/src/bin/fig5_loc.rs:
