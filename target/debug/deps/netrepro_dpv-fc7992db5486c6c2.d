/root/repo/target/debug/deps/netrepro_dpv-fc7992db5486c6c2.d: crates/dpv/src/lib.rs crates/dpv/src/acl.rs crates/dpv/src/ap.rs crates/dpv/src/apkeep.rs crates/dpv/src/atoms.rs crates/dpv/src/dataset.rs crates/dpv/src/header.rs crates/dpv/src/network.rs crates/dpv/src/queries.rs crates/dpv/src/reach.rs crates/dpv/src/sim.rs

/root/repo/target/debug/deps/netrepro_dpv-fc7992db5486c6c2: crates/dpv/src/lib.rs crates/dpv/src/acl.rs crates/dpv/src/ap.rs crates/dpv/src/apkeep.rs crates/dpv/src/atoms.rs crates/dpv/src/dataset.rs crates/dpv/src/header.rs crates/dpv/src/network.rs crates/dpv/src/queries.rs crates/dpv/src/reach.rs crates/dpv/src/sim.rs

crates/dpv/src/lib.rs:
crates/dpv/src/acl.rs:
crates/dpv/src/ap.rs:
crates/dpv/src/apkeep.rs:
crates/dpv/src/atoms.rs:
crates/dpv/src/dataset.rs:
crates/dpv/src/header.rs:
crates/dpv/src/network.rs:
crates/dpv/src/queries.rs:
crates/dpv/src/reach.rs:
crates/dpv/src/sim.rs:
