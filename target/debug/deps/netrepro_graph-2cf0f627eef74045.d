/root/repo/target/debug/deps/netrepro_graph-2cf0f627eef74045.d: crates/graph/src/lib.rs crates/graph/src/cuts.rs crates/graph/src/digraph.rs crates/graph/src/gen.rs crates/graph/src/maxflow.rs crates/graph/src/partition.rs crates/graph/src/paths.rs crates/graph/src/traffic.rs

/root/repo/target/debug/deps/netrepro_graph-2cf0f627eef74045: crates/graph/src/lib.rs crates/graph/src/cuts.rs crates/graph/src/digraph.rs crates/graph/src/gen.rs crates/graph/src/maxflow.rs crates/graph/src/partition.rs crates/graph/src/paths.rs crates/graph/src/traffic.rs

crates/graph/src/lib.rs:
crates/graph/src/cuts.rs:
crates/graph/src/digraph.rs:
crates/graph/src/gen.rs:
crates/graph/src/maxflow.rs:
crates/graph/src/partition.rs:
crates/graph/src/paths.rs:
crates/graph/src/traffic.rs:
