/root/repo/target/debug/deps/netrepro_graph-d2ad08b29e7af7cc.d: crates/graph/src/lib.rs crates/graph/src/cuts.rs crates/graph/src/digraph.rs crates/graph/src/gen.rs crates/graph/src/maxflow.rs crates/graph/src/partition.rs crates/graph/src/paths.rs crates/graph/src/traffic.rs

/root/repo/target/debug/deps/libnetrepro_graph-d2ad08b29e7af7cc.rlib: crates/graph/src/lib.rs crates/graph/src/cuts.rs crates/graph/src/digraph.rs crates/graph/src/gen.rs crates/graph/src/maxflow.rs crates/graph/src/partition.rs crates/graph/src/paths.rs crates/graph/src/traffic.rs

/root/repo/target/debug/deps/libnetrepro_graph-d2ad08b29e7af7cc.rmeta: crates/graph/src/lib.rs crates/graph/src/cuts.rs crates/graph/src/digraph.rs crates/graph/src/gen.rs crates/graph/src/maxflow.rs crates/graph/src/partition.rs crates/graph/src/paths.rs crates/graph/src/traffic.rs

crates/graph/src/lib.rs:
crates/graph/src/cuts.rs:
crates/graph/src/digraph.rs:
crates/graph/src/gen.rs:
crates/graph/src/maxflow.rs:
crates/graph/src/partition.rs:
crates/graph/src/paths.rs:
crates/graph/src/traffic.rs:
