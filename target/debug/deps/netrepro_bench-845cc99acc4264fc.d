/root/repo/target/debug/deps/netrepro_bench-845cc99acc4264fc.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnetrepro_bench-845cc99acc4264fc.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnetrepro_bench-845cc99acc4264fc.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
