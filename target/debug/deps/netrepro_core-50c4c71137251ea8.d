/root/repo/target/debug/deps/netrepro_core-50c4c71137251ea8.d: crates/core/src/lib.rs crates/core/src/artifact.rs crates/core/src/diagnosis.rs crates/core/src/framework.rs crates/core/src/llm.rs crates/core/src/metrics.rs crates/core/src/paper.rs crates/core/src/prompt.rs crates/core/src/session.rs crates/core/src/student.rs crates/core/src/survey.rs crates/core/src/timeline.rs crates/core/src/transcript.rs crates/core/src/validate.rs

/root/repo/target/debug/deps/libnetrepro_core-50c4c71137251ea8.rlib: crates/core/src/lib.rs crates/core/src/artifact.rs crates/core/src/diagnosis.rs crates/core/src/framework.rs crates/core/src/llm.rs crates/core/src/metrics.rs crates/core/src/paper.rs crates/core/src/prompt.rs crates/core/src/session.rs crates/core/src/student.rs crates/core/src/survey.rs crates/core/src/timeline.rs crates/core/src/transcript.rs crates/core/src/validate.rs

/root/repo/target/debug/deps/libnetrepro_core-50c4c71137251ea8.rmeta: crates/core/src/lib.rs crates/core/src/artifact.rs crates/core/src/diagnosis.rs crates/core/src/framework.rs crates/core/src/llm.rs crates/core/src/metrics.rs crates/core/src/paper.rs crates/core/src/prompt.rs crates/core/src/session.rs crates/core/src/student.rs crates/core/src/survey.rs crates/core/src/timeline.rs crates/core/src/transcript.rs crates/core/src/validate.rs

crates/core/src/lib.rs:
crates/core/src/artifact.rs:
crates/core/src/diagnosis.rs:
crates/core/src/framework.rs:
crates/core/src/llm.rs:
crates/core/src/metrics.rs:
crates/core/src/paper.rs:
crates/core/src/prompt.rs:
crates/core/src/session.rs:
crates/core/src/student.rs:
crates/core/src/survey.rs:
crates/core/src/timeline.rs:
crates/core/src/transcript.rs:
crates/core/src/validate.rs:
