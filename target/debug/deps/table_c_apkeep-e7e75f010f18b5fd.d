/root/repo/target/debug/deps/table_c_apkeep-e7e75f010f18b5fd.d: crates/bench/src/bin/table_c_apkeep.rs

/root/repo/target/debug/deps/table_c_apkeep-e7e75f010f18b5fd: crates/bench/src/bin/table_c_apkeep.rs

crates/bench/src/bin/table_c_apkeep.rs:
