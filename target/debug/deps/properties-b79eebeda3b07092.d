/root/repo/target/debug/deps/properties-b79eebeda3b07092.d: crates/graph/tests/properties.rs

/root/repo/target/debug/deps/properties-b79eebeda3b07092: crates/graph/tests/properties.rs

crates/graph/tests/properties.rs:
