/root/repo/target/debug/deps/netrepro_lp-aa50b8fcb60ecd67.d: crates/lp/src/lib.rs crates/lp/src/dense.rs crates/lp/src/duals.rs crates/lp/src/format.rs crates/lp/src/model.rs crates/lp/src/presolve.rs crates/lp/src/revised.rs crates/lp/src/standard.rs

/root/repo/target/debug/deps/netrepro_lp-aa50b8fcb60ecd67: crates/lp/src/lib.rs crates/lp/src/dense.rs crates/lp/src/duals.rs crates/lp/src/format.rs crates/lp/src/model.rs crates/lp/src/presolve.rs crates/lp/src/revised.rs crates/lp/src/standard.rs

crates/lp/src/lib.rs:
crates/lp/src/dense.rs:
crates/lp/src/duals.rs:
crates/lp/src/format.rs:
crates/lp/src/model.rs:
crates/lp/src/presolve.rs:
crates/lp/src/revised.rs:
crates/lp/src/standard.rs:
