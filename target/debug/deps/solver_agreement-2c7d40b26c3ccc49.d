/root/repo/target/debug/deps/solver_agreement-2c7d40b26c3ccc49.d: crates/lp/tests/solver_agreement.rs

/root/repo/target/debug/deps/solver_agreement-2c7d40b26c3ccc49: crates/lp/tests/solver_agreement.rs

crates/lp/tests/solver_agreement.rs:
