/root/repo/target/debug/deps/netrepro_bdd-9ee05169ef12976e.d: crates/bdd/src/lib.rs crates/bdd/src/builder.rs crates/bdd/src/dot.rs crates/bdd/src/manager.rs crates/bdd/src/quant.rs crates/bdd/src/node.rs crates/bdd/src/sat.rs

/root/repo/target/debug/deps/libnetrepro_bdd-9ee05169ef12976e.rlib: crates/bdd/src/lib.rs crates/bdd/src/builder.rs crates/bdd/src/dot.rs crates/bdd/src/manager.rs crates/bdd/src/quant.rs crates/bdd/src/node.rs crates/bdd/src/sat.rs

/root/repo/target/debug/deps/libnetrepro_bdd-9ee05169ef12976e.rmeta: crates/bdd/src/lib.rs crates/bdd/src/builder.rs crates/bdd/src/dot.rs crates/bdd/src/manager.rs crates/bdd/src/quant.rs crates/bdd/src/node.rs crates/bdd/src/sat.rs

crates/bdd/src/lib.rs:
crates/bdd/src/builder.rs:
crates/bdd/src/dot.rs:
crates/bdd/src/manager.rs:
crates/bdd/src/quant.rs:
crates/bdd/src/node.rs:
crates/bdd/src/sat.rs:
