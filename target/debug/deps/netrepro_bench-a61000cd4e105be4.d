/root/repo/target/debug/deps/netrepro_bench-a61000cd4e105be4.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/netrepro_bench-a61000cd4e105be4: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
