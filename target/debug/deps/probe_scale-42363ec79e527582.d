/root/repo/target/debug/deps/probe_scale-42363ec79e527582.d: crates/bench/src/bin/probe_scale.rs

/root/repo/target/debug/deps/probe_scale-42363ec79e527582: crates/bench/src/bin/probe_scale.rs

crates/bench/src/bin/probe_scale.rs:
