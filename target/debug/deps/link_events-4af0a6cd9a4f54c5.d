/root/repo/target/debug/deps/link_events-4af0a6cd9a4f54c5.d: crates/dpv/tests/link_events.rs

/root/repo/target/debug/deps/link_events-4af0a6cd9a4f54c5: crates/dpv/tests/link_events.rs

crates/dpv/tests/link_events.rs:
