/root/repo/target/debug/deps/dpv_cross_validation-fecd0e0d281ffa70.d: tests/dpv_cross_validation.rs

/root/repo/target/debug/deps/dpv_cross_validation-fecd0e0d281ffa70: tests/dpv_cross_validation.rs

tests/dpv_cross_validation.rs:
