/root/repo/target/debug/deps/table_d_ap-fbdbdd4b5e3c8d23.d: crates/bench/src/bin/table_d_ap.rs

/root/repo/target/debug/deps/table_d_ap-fbdbdd4b5e3c8d23: crates/bench/src/bin/table_d_ap.rs

crates/bench/src/bin/table_d_ap.rs:
