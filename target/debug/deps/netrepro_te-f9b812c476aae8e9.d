/root/repo/target/debug/deps/netrepro_te-f9b812c476aae8e9.d: crates/te/src/lib.rs crates/te/src/arrow.rs crates/te/src/baseline.rs crates/te/src/mcf.rs crates/te/src/ncflow.rs

/root/repo/target/debug/deps/libnetrepro_te-f9b812c476aae8e9.rlib: crates/te/src/lib.rs crates/te/src/arrow.rs crates/te/src/baseline.rs crates/te/src/mcf.rs crates/te/src/ncflow.rs

/root/repo/target/debug/deps/libnetrepro_te-f9b812c476aae8e9.rmeta: crates/te/src/lib.rs crates/te/src/arrow.rs crates/te/src/baseline.rs crates/te/src/mcf.rs crates/te/src/ncflow.rs

crates/te/src/lib.rs:
crates/te/src/arrow.rs:
crates/te/src/baseline.rs:
crates/te/src/mcf.rs:
crates/te/src/ncflow.rs:
