/root/repo/target/debug/deps/netrepro_rps-e4ddd1b32df6434f.d: crates/rps/src/lib.rs crates/rps/src/client.rs crates/rps/src/protocol.rs crates/rps/src/server.rs crates/rps/src/udp.rs

/root/repo/target/debug/deps/libnetrepro_rps-e4ddd1b32df6434f.rlib: crates/rps/src/lib.rs crates/rps/src/client.rs crates/rps/src/protocol.rs crates/rps/src/server.rs crates/rps/src/udp.rs

/root/repo/target/debug/deps/libnetrepro_rps-e4ddd1b32df6434f.rmeta: crates/rps/src/lib.rs crates/rps/src/client.rs crates/rps/src/protocol.rs crates/rps/src/server.rs crates/rps/src/udp.rs

crates/rps/src/lib.rs:
crates/rps/src/client.rs:
crates/rps/src/protocol.rs:
crates/rps/src/server.rs:
crates/rps/src/udp.rs:
