/root/repo/target/debug/deps/netrepro_te-fb636f055d83a6f5.d: crates/te/src/lib.rs crates/te/src/arrow.rs crates/te/src/baseline.rs crates/te/src/mcf.rs crates/te/src/ncflow.rs

/root/repo/target/debug/deps/netrepro_te-fb636f055d83a6f5: crates/te/src/lib.rs crates/te/src/arrow.rs crates/te/src/baseline.rs crates/te/src/mcf.rs crates/te/src/ncflow.rs

crates/te/src/lib.rs:
crates/te/src/arrow.rs:
crates/te/src/baseline.rs:
crates/te/src/mcf.rs:
crates/te/src/ncflow.rs:
