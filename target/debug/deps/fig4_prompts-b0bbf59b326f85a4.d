/root/repo/target/debug/deps/fig4_prompts-b0bbf59b326f85a4.d: crates/bench/src/bin/fig4_prompts.rs

/root/repo/target/debug/deps/fig4_prompts-b0bbf59b326f85a4: crates/bench/src/bin/fig4_prompts.rs

crates/bench/src/bin/fig4_prompts.rs:
