/root/repo/target/debug/deps/netrepro_bdd-3ce4379ea03e0861.d: crates/bdd/src/lib.rs crates/bdd/src/builder.rs crates/bdd/src/dot.rs crates/bdd/src/manager.rs crates/bdd/src/quant.rs crates/bdd/src/node.rs crates/bdd/src/sat.rs

/root/repo/target/debug/deps/netrepro_bdd-3ce4379ea03e0861: crates/bdd/src/lib.rs crates/bdd/src/builder.rs crates/bdd/src/dot.rs crates/bdd/src/manager.rs crates/bdd/src/quant.rs crates/bdd/src/node.rs crates/bdd/src/sat.rs

crates/bdd/src/lib.rs:
crates/bdd/src/builder.rs:
crates/bdd/src/dot.rs:
crates/bdd/src/manager.rs:
crates/bdd/src/quant.rs:
crates/bdd/src/node.rs:
crates/bdd/src/sat.rs:
