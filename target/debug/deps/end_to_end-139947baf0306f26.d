/root/repo/target/debug/deps/end_to_end-139947baf0306f26.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-139947baf0306f26: tests/end_to_end.rs

tests/end_to_end.rs:
