/root/repo/target/debug/deps/ablation_clusters-3cb49ddf6d0cd2ec.d: crates/bench/src/bin/ablation_clusters.rs

/root/repo/target/debug/deps/ablation_clusters-3cb49ddf6d0cd2ec: crates/bench/src/bin/ablation_clusters.rs

crates/bench/src/bin/ablation_clusters.rs:
