/root/repo/target/debug/deps/te_cross_validation-ed055714332ad70a.d: tests/te_cross_validation.rs

/root/repo/target/debug/deps/te_cross_validation-ed055714332ad70a: tests/te_cross_validation.rs

tests/te_cross_validation.rs:
