/root/repo/target/debug/deps/sim_oracle-a1f4fc81211c04e8.d: crates/dpv/tests/sim_oracle.rs

/root/repo/target/debug/deps/sim_oracle-a1f4fc81211c04e8: crates/dpv/tests/sim_oracle.rs

crates/dpv/tests/sim_oracle.rs:
