/root/repo/target/debug/deps/netrepro-6e712da64cbdd282.d: src/lib.rs

/root/repo/target/debug/deps/netrepro-6e712da64cbdd282: src/lib.rs

src/lib.rs:
