/root/repo/target/debug/deps/fig6_algorithm-3deddd27e5398b6a.d: crates/bench/src/bin/fig6_algorithm.rs

/root/repo/target/debug/deps/fig6_algorithm-3deddd27e5398b6a: crates/bench/src/bin/fig6_algorithm.rs

crates/bench/src/bin/fig6_algorithm.rs:
