/root/repo/target/debug/deps/fig1_survey-9dd735257d927a29.d: crates/bench/src/bin/fig1_survey.rs

/root/repo/target/debug/deps/fig1_survey-9dd735257d927a29: crates/bench/src/bin/fig1_survey.rs

crates/bench/src/bin/fig1_survey.rs:
