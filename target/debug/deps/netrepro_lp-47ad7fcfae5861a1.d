/root/repo/target/debug/deps/netrepro_lp-47ad7fcfae5861a1.d: crates/lp/src/lib.rs crates/lp/src/dense.rs crates/lp/src/duals.rs crates/lp/src/format.rs crates/lp/src/model.rs crates/lp/src/presolve.rs crates/lp/src/revised.rs crates/lp/src/standard.rs

/root/repo/target/debug/deps/libnetrepro_lp-47ad7fcfae5861a1.rlib: crates/lp/src/lib.rs crates/lp/src/dense.rs crates/lp/src/duals.rs crates/lp/src/format.rs crates/lp/src/model.rs crates/lp/src/presolve.rs crates/lp/src/revised.rs crates/lp/src/standard.rs

/root/repo/target/debug/deps/libnetrepro_lp-47ad7fcfae5861a1.rmeta: crates/lp/src/lib.rs crates/lp/src/dense.rs crates/lp/src/duals.rs crates/lp/src/format.rs crates/lp/src/model.rs crates/lp/src/presolve.rs crates/lp/src/revised.rs crates/lp/src/standard.rs

crates/lp/src/lib.rs:
crates/lp/src/dense.rs:
crates/lp/src/duals.rs:
crates/lp/src/format.rs:
crates/lp/src/model.rs:
crates/lp/src/presolve.rs:
crates/lp/src/revised.rs:
crates/lp/src/standard.rs:
