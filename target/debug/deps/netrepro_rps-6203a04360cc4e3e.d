/root/repo/target/debug/deps/netrepro_rps-6203a04360cc4e3e.d: crates/rps/src/lib.rs crates/rps/src/client.rs crates/rps/src/protocol.rs crates/rps/src/server.rs crates/rps/src/udp.rs

/root/repo/target/debug/deps/netrepro_rps-6203a04360cc4e3e: crates/rps/src/lib.rs crates/rps/src/client.rs crates/rps/src/protocol.rs crates/rps/src/server.rs crates/rps/src/udp.rs

crates/rps/src/lib.rs:
crates/rps/src/client.rs:
crates/rps/src/protocol.rs:
crates/rps/src/server.rs:
crates/rps/src/udp.rs:
