/root/repo/target/debug/deps/properties-3c9877ce0ad08f22.d: crates/bdd/tests/properties.rs

/root/repo/target/debug/deps/properties-3c9877ce0ad08f22: crates/bdd/tests/properties.rs

crates/bdd/tests/properties.rs:
