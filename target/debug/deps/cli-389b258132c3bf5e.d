/root/repo/target/debug/deps/cli-389b258132c3bf5e.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-389b258132c3bf5e: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_netrepro=/root/repo/target/debug/netrepro
