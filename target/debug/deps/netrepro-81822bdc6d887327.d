/root/repo/target/debug/deps/netrepro-81822bdc6d887327.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/cmd.rs

/root/repo/target/debug/deps/netrepro-81822bdc6d887327: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/cmd.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/cmd.rs:
