/root/repo/target/debug/deps/netrepro-a421fb9549d432b2.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/cmd.rs

/root/repo/target/debug/deps/netrepro-a421fb9549d432b2: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/cmd.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/cmd.rs:
