/root/repo/target/debug/deps/ablation_prompting-2061649714fb5117.d: crates/bench/src/bin/ablation_prompting.rs

/root/repo/target/debug/deps/ablation_prompting-2061649714fb5117: crates/bench/src/bin/ablation_prompting.rs

crates/bench/src/bin/ablation_prompting.rs:
