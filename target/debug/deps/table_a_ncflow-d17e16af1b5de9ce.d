/root/repo/target/debug/deps/table_a_ncflow-d17e16af1b5de9ce.d: crates/bench/src/bin/table_a_ncflow.rs

/root/repo/target/debug/deps/table_a_ncflow-d17e16af1b5de9ce: crates/bench/src/bin/table_a_ncflow.rs

crates/bench/src/bin/table_a_ncflow.rs:
