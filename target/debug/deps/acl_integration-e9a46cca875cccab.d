/root/repo/target/debug/deps/acl_integration-e9a46cca875cccab.d: crates/dpv/tests/acl_integration.rs

/root/repo/target/debug/deps/acl_integration-e9a46cca875cccab: crates/dpv/tests/acl_integration.rs

crates/dpv/tests/acl_integration.rs:
