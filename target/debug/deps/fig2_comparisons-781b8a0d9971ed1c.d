/root/repo/target/debug/deps/fig2_comparisons-781b8a0d9971ed1c.d: crates/bench/src/bin/fig2_comparisons.rs

/root/repo/target/debug/deps/fig2_comparisons-781b8a0d9971ed1c: crates/bench/src/bin/fig2_comparisons.rs

crates/bench/src/bin/fig2_comparisons.rs:
