/root/repo/target/debug/deps/fig3_rps-89729b223afd20f5.d: crates/bench/src/bin/fig3_rps.rs

/root/repo/target/debug/deps/fig3_rps-89729b223afd20f5: crates/bench/src/bin/fig3_rps.rs

crates/bench/src/bin/fig3_rps.rs:
