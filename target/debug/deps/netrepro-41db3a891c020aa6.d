/root/repo/target/debug/deps/netrepro-41db3a891c020aa6.d: src/lib.rs

/root/repo/target/debug/deps/libnetrepro-41db3a891c020aa6.rlib: src/lib.rs

/root/repo/target/debug/deps/libnetrepro-41db3a891c020aa6.rmeta: src/lib.rs

src/lib.rs:
