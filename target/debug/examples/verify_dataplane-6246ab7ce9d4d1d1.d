/root/repo/target/debug/examples/verify_dataplane-6246ab7ce9d4d1d1.d: examples/verify_dataplane.rs

/root/repo/target/debug/examples/verify_dataplane-6246ab7ce9d4d1d1: examples/verify_dataplane.rs

examples/verify_dataplane.rs:
