/root/repo/target/debug/examples/rps_demo-f4af0f20c82cc831.d: examples/rps_demo.rs

/root/repo/target/debug/examples/rps_demo-f4af0f20c82cc831: examples/rps_demo.rs

examples/rps_demo.rs:
