/root/repo/target/debug/examples/auto_reproduce-020ab1f062302b74.d: examples/auto_reproduce.rs

/root/repo/target/debug/examples/auto_reproduce-020ab1f062302b74: examples/auto_reproduce.rs

examples/auto_reproduce.rs:
