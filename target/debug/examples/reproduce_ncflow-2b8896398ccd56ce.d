/root/repo/target/debug/examples/reproduce_ncflow-2b8896398ccd56ce.d: examples/reproduce_ncflow.rs

/root/repo/target/debug/examples/reproduce_ncflow-2b8896398ccd56ce: examples/reproduce_ncflow.rs

examples/reproduce_ncflow.rs:
