/root/repo/target/debug/examples/survey-6ce370e5e14df094.d: examples/survey.rs

/root/repo/target/debug/examples/survey-6ce370e5e14df094: examples/survey.rs

examples/survey.rs:
