/root/repo/target/debug/examples/quickstart-0231df2ed138d15d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0231df2ed138d15d: examples/quickstart.rs

examples/quickstart.rs:
