/root/repo/target/release/examples/seed_scan-25f182f7eaebfa53.d: examples/seed_scan.rs

/root/repo/target/release/examples/seed_scan-25f182f7eaebfa53: examples/seed_scan.rs

examples/seed_scan.rs:
