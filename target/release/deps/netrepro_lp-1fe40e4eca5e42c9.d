/root/repo/target/release/deps/netrepro_lp-1fe40e4eca5e42c9.d: crates/lp/src/lib.rs crates/lp/src/dense.rs crates/lp/src/duals.rs crates/lp/src/format.rs crates/lp/src/model.rs crates/lp/src/presolve.rs crates/lp/src/revised.rs crates/lp/src/standard.rs

/root/repo/target/release/deps/libnetrepro_lp-1fe40e4eca5e42c9.rlib: crates/lp/src/lib.rs crates/lp/src/dense.rs crates/lp/src/duals.rs crates/lp/src/format.rs crates/lp/src/model.rs crates/lp/src/presolve.rs crates/lp/src/revised.rs crates/lp/src/standard.rs

/root/repo/target/release/deps/libnetrepro_lp-1fe40e4eca5e42c9.rmeta: crates/lp/src/lib.rs crates/lp/src/dense.rs crates/lp/src/duals.rs crates/lp/src/format.rs crates/lp/src/model.rs crates/lp/src/presolve.rs crates/lp/src/revised.rs crates/lp/src/standard.rs

crates/lp/src/lib.rs:
crates/lp/src/dense.rs:
crates/lp/src/duals.rs:
crates/lp/src/format.rs:
crates/lp/src/model.rs:
crates/lp/src/presolve.rs:
crates/lp/src/revised.rs:
crates/lp/src/standard.rs:
