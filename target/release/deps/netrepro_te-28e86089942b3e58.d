/root/repo/target/release/deps/netrepro_te-28e86089942b3e58.d: crates/te/src/lib.rs crates/te/src/arrow.rs crates/te/src/baseline.rs crates/te/src/mcf.rs crates/te/src/ncflow.rs

/root/repo/target/release/deps/libnetrepro_te-28e86089942b3e58.rlib: crates/te/src/lib.rs crates/te/src/arrow.rs crates/te/src/baseline.rs crates/te/src/mcf.rs crates/te/src/ncflow.rs

/root/repo/target/release/deps/libnetrepro_te-28e86089942b3e58.rmeta: crates/te/src/lib.rs crates/te/src/arrow.rs crates/te/src/baseline.rs crates/te/src/mcf.rs crates/te/src/ncflow.rs

crates/te/src/lib.rs:
crates/te/src/arrow.rs:
crates/te/src/baseline.rs:
crates/te/src/mcf.rs:
crates/te/src/ncflow.rs:
