/root/repo/target/release/deps/fig3_rps-f884f517cbcd8d4d.d: crates/bench/src/bin/fig3_rps.rs

/root/repo/target/release/deps/fig3_rps-f884f517cbcd8d4d: crates/bench/src/bin/fig3_rps.rs

crates/bench/src/bin/fig3_rps.rs:
