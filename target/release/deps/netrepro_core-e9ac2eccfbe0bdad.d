/root/repo/target/release/deps/netrepro_core-e9ac2eccfbe0bdad.d: crates/core/src/lib.rs crates/core/src/artifact.rs crates/core/src/diagnosis.rs crates/core/src/framework.rs crates/core/src/llm.rs crates/core/src/metrics.rs crates/core/src/paper.rs crates/core/src/prompt.rs crates/core/src/session.rs crates/core/src/student.rs crates/core/src/survey.rs crates/core/src/timeline.rs crates/core/src/transcript.rs crates/core/src/validate.rs

/root/repo/target/release/deps/libnetrepro_core-e9ac2eccfbe0bdad.rlib: crates/core/src/lib.rs crates/core/src/artifact.rs crates/core/src/diagnosis.rs crates/core/src/framework.rs crates/core/src/llm.rs crates/core/src/metrics.rs crates/core/src/paper.rs crates/core/src/prompt.rs crates/core/src/session.rs crates/core/src/student.rs crates/core/src/survey.rs crates/core/src/timeline.rs crates/core/src/transcript.rs crates/core/src/validate.rs

/root/repo/target/release/deps/libnetrepro_core-e9ac2eccfbe0bdad.rmeta: crates/core/src/lib.rs crates/core/src/artifact.rs crates/core/src/diagnosis.rs crates/core/src/framework.rs crates/core/src/llm.rs crates/core/src/metrics.rs crates/core/src/paper.rs crates/core/src/prompt.rs crates/core/src/session.rs crates/core/src/student.rs crates/core/src/survey.rs crates/core/src/timeline.rs crates/core/src/transcript.rs crates/core/src/validate.rs

crates/core/src/lib.rs:
crates/core/src/artifact.rs:
crates/core/src/diagnosis.rs:
crates/core/src/framework.rs:
crates/core/src/llm.rs:
crates/core/src/metrics.rs:
crates/core/src/paper.rs:
crates/core/src/prompt.rs:
crates/core/src/session.rs:
crates/core/src/student.rs:
crates/core/src/survey.rs:
crates/core/src/timeline.rs:
crates/core/src/transcript.rs:
crates/core/src/validate.rs:
