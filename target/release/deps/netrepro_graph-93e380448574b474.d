/root/repo/target/release/deps/netrepro_graph-93e380448574b474.d: crates/graph/src/lib.rs crates/graph/src/cuts.rs crates/graph/src/digraph.rs crates/graph/src/gen.rs crates/graph/src/maxflow.rs crates/graph/src/partition.rs crates/graph/src/paths.rs crates/graph/src/traffic.rs

/root/repo/target/release/deps/libnetrepro_graph-93e380448574b474.rlib: crates/graph/src/lib.rs crates/graph/src/cuts.rs crates/graph/src/digraph.rs crates/graph/src/gen.rs crates/graph/src/maxflow.rs crates/graph/src/partition.rs crates/graph/src/paths.rs crates/graph/src/traffic.rs

/root/repo/target/release/deps/libnetrepro_graph-93e380448574b474.rmeta: crates/graph/src/lib.rs crates/graph/src/cuts.rs crates/graph/src/digraph.rs crates/graph/src/gen.rs crates/graph/src/maxflow.rs crates/graph/src/partition.rs crates/graph/src/paths.rs crates/graph/src/traffic.rs

crates/graph/src/lib.rs:
crates/graph/src/cuts.rs:
crates/graph/src/digraph.rs:
crates/graph/src/gen.rs:
crates/graph/src/maxflow.rs:
crates/graph/src/partition.rs:
crates/graph/src/paths.rs:
crates/graph/src/traffic.rs:
