/root/repo/target/release/deps/fig1_survey-61b87c6a81a7e841.d: crates/bench/src/bin/fig1_survey.rs

/root/repo/target/release/deps/fig1_survey-61b87c6a81a7e841: crates/bench/src/bin/fig1_survey.rs

crates/bench/src/bin/fig1_survey.rs:
