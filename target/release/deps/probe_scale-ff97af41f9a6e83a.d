/root/repo/target/release/deps/probe_scale-ff97af41f9a6e83a.d: crates/bench/src/bin/probe_scale.rs

/root/repo/target/release/deps/probe_scale-ff97af41f9a6e83a: crates/bench/src/bin/probe_scale.rs

crates/bench/src/bin/probe_scale.rs:
