/root/repo/target/release/deps/netrepro-d7ffe90fbb8435b0.d: src/lib.rs

/root/repo/target/release/deps/libnetrepro-d7ffe90fbb8435b0.rlib: src/lib.rs

/root/repo/target/release/deps/libnetrepro-d7ffe90fbb8435b0.rmeta: src/lib.rs

src/lib.rs:
