/root/repo/target/release/deps/netrepro_bench-8339f447a54a565d.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnetrepro_bench-8339f447a54a565d.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnetrepro_bench-8339f447a54a565d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
