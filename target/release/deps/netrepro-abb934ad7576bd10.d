/root/repo/target/release/deps/netrepro-abb934ad7576bd10.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/cmd.rs

/root/repo/target/release/deps/netrepro-abb934ad7576bd10: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/cmd.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/cmd.rs:
