/root/repo/target/release/deps/fig6_algorithm-d09ca1ed1b54a296.d: crates/bench/src/bin/fig6_algorithm.rs

/root/repo/target/release/deps/fig6_algorithm-d09ca1ed1b54a296: crates/bench/src/bin/fig6_algorithm.rs

crates/bench/src/bin/fig6_algorithm.rs:
