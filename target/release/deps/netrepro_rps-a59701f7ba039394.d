/root/repo/target/release/deps/netrepro_rps-a59701f7ba039394.d: crates/rps/src/lib.rs crates/rps/src/client.rs crates/rps/src/protocol.rs crates/rps/src/server.rs crates/rps/src/udp.rs

/root/repo/target/release/deps/libnetrepro_rps-a59701f7ba039394.rlib: crates/rps/src/lib.rs crates/rps/src/client.rs crates/rps/src/protocol.rs crates/rps/src/server.rs crates/rps/src/udp.rs

/root/repo/target/release/deps/libnetrepro_rps-a59701f7ba039394.rmeta: crates/rps/src/lib.rs crates/rps/src/client.rs crates/rps/src/protocol.rs crates/rps/src/server.rs crates/rps/src/udp.rs

crates/rps/src/lib.rs:
crates/rps/src/client.rs:
crates/rps/src/protocol.rs:
crates/rps/src/server.rs:
crates/rps/src/udp.rs:
