/root/repo/target/release/deps/fig2_comparisons-7c6bac157ec9ed8f.d: crates/bench/src/bin/fig2_comparisons.rs

/root/repo/target/release/deps/fig2_comparisons-7c6bac157ec9ed8f: crates/bench/src/bin/fig2_comparisons.rs

crates/bench/src/bin/fig2_comparisons.rs:
