/root/repo/target/release/deps/fig5_loc-f33a1bf1179148a3.d: crates/bench/src/bin/fig5_loc.rs

/root/repo/target/release/deps/fig5_loc-f33a1bf1179148a3: crates/bench/src/bin/fig5_loc.rs

crates/bench/src/bin/fig5_loc.rs:
