/root/repo/target/release/deps/table_b_arrow-07bc1ef53017b674.d: crates/bench/src/bin/table_b_arrow.rs

/root/repo/target/release/deps/table_b_arrow-07bc1ef53017b674: crates/bench/src/bin/table_b_arrow.rs

crates/bench/src/bin/table_b_arrow.rs:
