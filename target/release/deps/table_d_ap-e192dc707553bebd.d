/root/repo/target/release/deps/table_d_ap-e192dc707553bebd.d: crates/bench/src/bin/table_d_ap.rs

/root/repo/target/release/deps/table_d_ap-e192dc707553bebd: crates/bench/src/bin/table_d_ap.rs

crates/bench/src/bin/table_d_ap.rs:
