/root/repo/target/release/deps/table_a_ncflow-2071ee6e4ebebc2e.d: crates/bench/src/bin/table_a_ncflow.rs

/root/repo/target/release/deps/table_a_ncflow-2071ee6e4ebebc2e: crates/bench/src/bin/table_a_ncflow.rs

crates/bench/src/bin/table_a_ncflow.rs:
