/root/repo/target/release/deps/netrepro_bdd-afcca0a94b186668.d: crates/bdd/src/lib.rs crates/bdd/src/builder.rs crates/bdd/src/dot.rs crates/bdd/src/manager.rs crates/bdd/src/quant.rs crates/bdd/src/node.rs crates/bdd/src/sat.rs

/root/repo/target/release/deps/libnetrepro_bdd-afcca0a94b186668.rlib: crates/bdd/src/lib.rs crates/bdd/src/builder.rs crates/bdd/src/dot.rs crates/bdd/src/manager.rs crates/bdd/src/quant.rs crates/bdd/src/node.rs crates/bdd/src/sat.rs

/root/repo/target/release/deps/libnetrepro_bdd-afcca0a94b186668.rmeta: crates/bdd/src/lib.rs crates/bdd/src/builder.rs crates/bdd/src/dot.rs crates/bdd/src/manager.rs crates/bdd/src/quant.rs crates/bdd/src/node.rs crates/bdd/src/sat.rs

crates/bdd/src/lib.rs:
crates/bdd/src/builder.rs:
crates/bdd/src/dot.rs:
crates/bdd/src/manager.rs:
crates/bdd/src/quant.rs:
crates/bdd/src/node.rs:
crates/bdd/src/sat.rs:
