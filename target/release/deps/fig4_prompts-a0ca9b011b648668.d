/root/repo/target/release/deps/fig4_prompts-a0ca9b011b648668.d: crates/bench/src/bin/fig4_prompts.rs

/root/repo/target/release/deps/fig4_prompts-a0ca9b011b648668: crates/bench/src/bin/fig4_prompts.rs

crates/bench/src/bin/fig4_prompts.rs:
