/root/repo/target/release/deps/ablation_prompting-3b81f87fda5848fc.d: crates/bench/src/bin/ablation_prompting.rs

/root/repo/target/release/deps/ablation_prompting-3b81f87fda5848fc: crates/bench/src/bin/ablation_prompting.rs

crates/bench/src/bin/ablation_prompting.rs:
