/root/repo/target/release/deps/table_c_apkeep-f52dddfbd0447ac0.d: crates/bench/src/bin/table_c_apkeep.rs

/root/repo/target/release/deps/table_c_apkeep-f52dddfbd0447ac0: crates/bench/src/bin/table_c_apkeep.rs

crates/bench/src/bin/table_c_apkeep.rs:
