/root/repo/target/release/deps/ablation_clusters-b7ccc92e900a8bd7.d: crates/bench/src/bin/ablation_clusters.rs

/root/repo/target/release/deps/ablation_clusters-b7ccc92e900a8bd7: crates/bench/src/bin/ablation_clusters.rs

crates/bench/src/bin/ablation_clusters.rs:
