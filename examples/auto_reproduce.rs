//! §4's (semi-)automatic reproduction, end to end: the [`AutoEngineer`]
//! plans and runs the unified framework for every experiment system,
//! then the diagnosis module classifies each validation discrepancy
//! into the paper's root-cause taxonomy.
//!
//! ```sh
//! cargo run --release --example auto_reproduce
//! ```

use netrepro::core::diagnosis::{diagnose_dpv, diagnose_te};
use netrepro::core::framework::{AutoEngineer, Plan};
use netrepro::core::paper::{PaperSpec, TargetSystem};
use netrepro::core::validate::{
    dpv_dataset, te_instance, validate_ap, validate_apkeep, validate_ncflow,
};
use netrepro::graph::gen::{sample_pairs, TopologySpec};

fn main() {
    let auto = AutoEngineer::default();
    println!("== automatic reproduction (unified framework, §4) ==");
    for sys in TargetSystem::EXPERIMENT {
        let spec = PaperSpec::for_system(sys);
        let plan = Plan::derive(&spec);
        let attempts = auto.run(sys, 2023);
        let accepted = attempts.iter().any(|a| a.accepted);
        println!(
            "{:>7}: plan {} steps / {} components; {} attempt(s), {} prompts total, accepted={}",
            sys.name(),
            plan.steps.len(),
            plan.num_components(),
            attempts.len(),
            AutoEngineer::total_prompts(&attempts),
            accepted
        );
    }

    println!("\n== discrepancy diagnosis (root-cause taxonomy, §4) ==");
    // Participant A's pattern.
    let inst = te_instance(&TopologySpec::new("CRL", 33, 2023), 100, 4);
    if let Ok(v) = validate_ncflow(&inst) {
        let d = diagnose_te(&v);
        println!("NCFlow : {:?} — {}", d.cause, d.evidence);
    }
    // Participant C's pattern.
    let ds = dpv_dataset("Internet2", 9, 12, 2032);
    let v = validate_apkeep(&ds, "Internet2");
    let d = diagnose_dpv(&v);
    println!("APKeep : {:?} — {}", d.cause, d.evidence);
    // Participant D's pattern.
    let ds = dpv_dataset("Purdue", 18, 14, 2041);
    let queries = sample_pairs(&ds.network.graph, 5, 3);
    let v = validate_ap(&ds, "Purdue", &queries, 100_000);
    let d = diagnose_dpv(&v);
    println!("AP     : {:?} — {}", d.cause, d.evidence);
}
