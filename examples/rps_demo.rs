//! The Figure 3 program, live: start the rock-paper-scissors server on
//! an ephemeral port, connect a client, play a best-of-nine.
//!
//! ```sh
//! cargo run --example rps_demo
//! ```

use netrepro::rps::{Move, Outcome, RpsClient, RpsServer};

fn main() {
    let server = RpsServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("addr");
    println!("server listening on {addr}");

    let server_thread = std::thread::spawn(move || {
        let handles = server.serve_connections(1).expect("accept");
        for h in handles {
            let rounds = h.join().expect("thread").expect("serve");
            println!("server: session ended after {rounds} rounds");
        }
    });

    let mut client = RpsClient::connect(addr).expect("connect");
    println!("client connected");

    let strategy = [
        Move::Paper,
        Move::Scissors,
        Move::Rock,
        Move::Rock,
        Move::Paper,
        Move::Scissors,
        Move::Scissors,
        Move::Rock,
        Move::Paper,
    ];
    let (mut w, mut l, mut d) = (0, 0, 0);
    for m in strategy {
        let r = client.play(m).expect("play");
        let word = match r.outcome {
            Outcome::Win => {
                w += 1;
                "win"
            }
            Outcome::Lose => {
                l += 1;
                "lose"
            }
            Outcome::Draw => {
                d += 1;
                "draw"
            }
        };
        println!(
            "round {:>2}: you {} vs server {} -> {word}",
            r.round,
            r.you.letter(),
            r.server.letter()
        );
    }
    let rounds = client.disconnect().expect("disconnect");
    println!("final: {w} wins / {l} losses / {d} draws over {rounds} rounds");
    server_thread.join().expect("server thread");
}
