//! The §2.1 survey: open-source-prototype rates and comparison burdens
//! over the synthetic SIGCOMM/NSDI 2013–2022 corpus.
//!
//! ```sh
//! cargo run --example survey
//! ```

use netrepro::core::survey::{build_corpus, SurveyStats, Venue};

fn main() {
    let corpus = build_corpus(2023);
    let stats = SurveyStats::compute(&corpus);

    println!("corpus: {} papers (2013-2022)", corpus.len());
    println!("\nopen-source rate per year:");
    println!("{:>6} {:>10} {:>10}", "year", "SIGCOMM", "NSDI");
    for year in 2013..=2022u32 {
        let get = |v: Venue| {
            stats
                .per_year
                .iter()
                .find(|&&(venue, y, _)| venue == v && y == year)
                .map(|&(_, _, r)| 100.0 * r)
                .unwrap_or(f64::NAN)
        };
        println!("{year:>6} {:>9.1}% {:>9.1}%", get(Venue::Sigcomm), get(Venue::Nsdi));
    }
    println!(
        "\naggregates: SIGCOMM {:.1}% | NSDI {:.1}% | both {:.1}%  (paper: 32/29/31)",
        100.0 * stats.sigcomm_rate,
        100.0 * stats.nsdi_rate,
        100.0 * stats.both_rate
    );
    println!(
        "comparisons: {:.2}% compare >=2 (paper 59.68); manual >=1 {:.2}% (49.20); \
         manual >=2 {:.2}% (26.65); conditional mean {:.2} (2.29)",
        100.0 * stats.pct_ge2_compared,
        100.0 * stats.pct_ge1_manual,
        100.0 * stats.pct_ge2_manual,
        stats.mean_manual_conditional
    );
}
