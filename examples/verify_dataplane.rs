//! Data-plane verification tour: generate a faulty FIB dataset, find
//! its loops and blackholes with the AP verifier, then replay the same
//! rules through APKeep incrementally and watch the change counts.
//!
//! ```sh
//! cargo run --example verify_dataplane
//! ```

use netrepro::bdd::EngineProfile;
use netrepro::dpv::ap::ApVerifier;
use netrepro::dpv::apkeep::ApKeep;
use netrepro::dpv::dataset::{generate, DatasetOpts};
use netrepro::dpv::header::HeaderLayout;
use netrepro::dpv::reach::{blackholes, find_loops, selective_bfs};
use netrepro::graph::gen::{waxman, TopologySpec};
use netrepro::graph::NodeId;

fn main() {
    // A WAN with deliberately injected faults: more-specific rules that
    // deflect or drop slices of other devices' prefixes.
    let graph = waxman(&TopologySpec::new("Faulty", 16, 42));
    let ds = generate(
        graph,
        HeaderLayout::new(14),
        &DatasetOpts { prefixes_per_device: 1, fault_rate: 0.6, seed: 42 },
    );
    println!(
        "dataset: {} devices, {} rules",
        ds.network.graph.num_nodes(),
        ds.network.num_rules()
    );

    // Batch verification (the AP verifier).
    let verifier = ApVerifier::build(&ds.network, EngineProfile::Cached);
    println!("atomic predicates: {}", verifier.num_atoms());

    let loops = find_loops(&verifier, 5);
    println!("forwarding loops: {}", loops.len());
    for l in &loops {
        println!("  loop through device {:?} carrying {} atoms", l.device, l.atoms.len());
    }

    let bh = blackholes(&verifier, NodeId(0));
    let owned_dropped: usize = bh
        .iter()
        .map(|(d, atoms)| {
            // Only count drops of *owned* header space: the unowned
            // residue legitimately has nowhere to go.
            let mut owned = netrepro::dpv::ap::AtomSet::empty(verifier.num_atoms());
            for dev in 0..verifier.tables.len() {
                owned = owned.union(&verifier.deliver_set(NodeId(dev as u32)));
            }
            let _ = d;
            atoms.intersect(&owned).len()
        })
        .sum();
    println!("blackholed owned atoms (from device 0): {owned_dropped}");

    let r = selective_bfs(&verifier, NodeId(0), NodeId(9));
    println!("reachability 0 -> 9: {} delivered atoms", r.delivered.len());

    // Incremental verification (APKeep): replay the same rules.
    let mut apkeep = ApKeep::new(&ds.network, EngineProfile::Cached);
    let mut changes = 0usize;
    for v in ds.network.graph.nodes() {
        for rule in &ds.network.device(v).rules {
            changes += apkeep.insert(v, *rule);
        }
    }
    println!(
        "APKeep replay: {} rules -> {} behaviour changes, {} atomic predicates",
        ds.network.num_rules(),
        changes,
        apkeep.num_atomic_predicates()
    );
    assert_eq!(apkeep.num_atomic_predicates(), verifier.num_atoms());
    println!("incremental and batch verifiers agree on the atom count ✓");
}
