//! Quickstart: a five-minute tour of the workspace.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds a small WAN, engineers traffic on it with both LP solvers,
//! verifies a data plane with atomic predicates, and runs one simulated
//! LLM reproduction session.

use netrepro::bdd::EngineProfile;
use netrepro::core::paper::TargetSystem;
use netrepro::core::student::Participant;
use netrepro::core::ReproductionSession;
use netrepro::dpv::ap::ApVerifier;
use netrepro::dpv::dataset::{generate, DatasetOpts};
use netrepro::dpv::header::HeaderLayout;
use netrepro::dpv::reach::selective_bfs;
use netrepro::graph::gen::{waxman, TopologySpec};
use netrepro::graph::{traffic, NodeId};
use netrepro::lp::dense::DenseSimplex;
use netrepro::lp::revised::RevisedSimplex;
use netrepro::te::mcf::{solve_mcf, TeInstance};

fn main() {
    // 1. A seeded synthetic WAN and a gravity traffic matrix.
    let graph = waxman(&TopologySpec::new("Quickstart", 20, 7));
    println!(
        "topology: {} nodes, {} directed edges",
        graph.num_nodes(),
        graph.num_edges()
    );
    let tm = traffic::gravity(&graph, 400.0, 8);

    // 2. Traffic engineering with both solver stand-ins.
    let inst = TeInstance {
        name: "quickstart".into(),
        graph: graph.clone(),
        tm,
        paths_per_commodity: 4,
        max_commodities: 20,
    };
    let fast = solve_mcf(&inst, &RevisedSimplex::default()).expect("revised solve");
    let slow = solve_mcf(&inst, &DenseSimplex::default()).expect("dense solve");
    println!(
        "TE objective: revised {:.2} in {:?}, dense {:.2} in {:?}",
        fast.total_flow, fast.solve_time, slow.total_flow, slow.solve_time
    );

    // 3. Data-plane verification with atomic predicates.
    let ds = generate(graph, HeaderLayout::new(14), &DatasetOpts::default());
    let verifier = ApVerifier::build(&ds.network, EngineProfile::Cached);
    let reach = selective_bfs(&verifier, NodeId(0), NodeId(10));
    println!(
        "DPV: {} atomic predicates; {} atoms delivered 0 -> 10",
        verifier.num_atoms(),
        reach.delivered.len()
    );

    // 4. One simulated reproduction session (participant A / NCFlow).
    let report = ReproductionSession::new(Participant::preset(TargetSystem::NcFlow), 2023).run();
    println!(
        "reproduction session A: {} prompts, {} words, {} LoC ({}% of the open-source prototype)",
        report.total_prompts(),
        report.total_words(),
        report.artifact.loc,
        (100.0 * report.artifact.loc_ratio()).round()
    );
}
