//! Participant A end-to-end: simulate the prompt-engineering session
//! that produces the NCFlow reproduction, then differentially validate
//! the reproduced configuration against the open-source one on several
//! TE instances — exactly the workflow of the paper's §3.1.
//!
//! ```sh
//! cargo run --release --example reproduce_ncflow
//! ```

use netrepro::core::paper::{PaperSpec, TargetSystem};
use netrepro::core::student::Participant;
use netrepro::core::validate::{te_instance, validate_ncflow};
use netrepro::core::{timeline, transcript, ReproductionSession};
use netrepro::graph::gen::TopologySpec;

fn main() {
    // Phase 1: the interaction (Figure 4/5 metrics).
    let report = ReproductionSession::new(Participant::preset(TargetSystem::NcFlow), 2023).run();
    println!("== session ==");
    println!("prompts: {}", report.total_prompts());
    println!("words:   {}", report.total_words());
    let cal = timeline::schedule(&report, 3);
    println!(
        "calendar: finished on day {} of {} ({} progress meetings)",
        cal.days_elapsed(),
        timeline::WINDOW_DAYS,
        cal.meetings_held()
    );
    println!(
        "LoC:     {} (open-source: {}, ratio {:.2})",
        report.artifact.loc,
        report.artifact.open_source_loc,
        report.artifact.loc_ratio()
    );
    println!("residual defects: {:?}", report.residual_defects);

    // The full conversation log (the paper published these as [15]).
    let spec = PaperSpec::for_system(TargetSystem::NcFlow);
    let log = transcript::render(&report, &spec);
    let head: String = log.lines().take(12).collect::<Vec<_>>().join("\n");
    println!("\n== transcript (first lines) ==\n{head}\n   ...");

    // Phase 2: small-scale correctness + large-scale performance
    // validation against the open-source configuration.
    println!("\n== validation ==");
    for (name, nodes) in [("Abilene", 11), ("GEANT", 40), ("Uninett", 74)] {
        let inst = te_instance(&TopologySpec::new(name, nodes, 2023), 40, 4);
        match validate_ncflow(&inst) {
            Ok(v) => println!(
                "{name:>8}: obj diff {:.3}% | open {:?} vs repro {:?} ({:.1}x)",
                v.obj_diff_pct(),
                v.latency_open,
                v.latency_repro,
                v.latency_ratio()
            ),
            Err(e) => println!("{name:>8}: {e}"),
        }
    }
    println!(
        "\npaper (§3.2, participant A): objective within 3.51%, latency up to 111x \
         due to the LP-solver pairing"
    );
}
