//! Cross-crate DPV properties on arbitrary seeded datasets: the batch
//! AP verifier, the incremental APKeep pipeline, and the two
//! reachability strategies must all agree; engine profiles must be
//! observationally identical.

use netrepro::bdd::EngineProfile;
use netrepro::dpv::ap::ApVerifier;
use netrepro::dpv::apkeep::ApKeep;
use netrepro::dpv::dataset::{generate, DatasetOpts};
use netrepro::dpv::header::HeaderLayout;
use netrepro::dpv::reach::{path_enumeration, selective_bfs};
use netrepro::graph::gen::{sample_pairs, waxman, TopologySpec};
use proptest::prelude::*;

fn dataset(nodes: usize, seed: u64, fault_rate: f64) -> netrepro::dpv::dataset::FibDataset {
    let graph = waxman(&TopologySpec::new("prop", nodes, seed));
    generate(
        graph,
        HeaderLayout::new(14),
        &DatasetOpts { prefixes_per_device: 1, fault_rate, seed },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn apkeep_equals_batch_compilation(seed in 0u64..400, nodes in 5usize..12, faults in 0.0f64..0.8) {
        let ds = dataset(nodes, seed, faults);
        let mut k = ApKeep::new(&ds.network, EngineProfile::Cached);
        for v in ds.network.graph.nodes() {
            for r in &ds.network.device(v).rules {
                k.insert(v, *r);
            }
        }
        for v in ds.network.graph.nodes() {
            let pp = ds.network.port_predicates(&mut k.manager, v);
            for &(action, batch) in &pp.preds {
                prop_assert_eq!(k.ppm_pred(v, action), batch,
                    "device {:?} action {:?}", v, action);
            }
        }
        let ap = ApVerifier::build(&ds.network, EngineProfile::Cached);
        // The real-time (split/merge) atom count, the batch recount of
        // the PPM, and the independent AP verifier must all agree.
        let dynamic = k.num_atomic_predicates();
        let recount = k.recount_atomic_predicates();
        prop_assert_eq!(dynamic, recount, "dynamic atoms diverged from batch recount");
        prop_assert_eq!(dynamic, ap.num_atoms());
        k.atoms.check_invariants(&mut k.manager).map_err(|e| {
            TestCaseError::fail(format!("atom invariant violated: {e}"))
        })?;
    }

    #[test]
    fn engine_profiles_agree_on_verification(seed in 0u64..400, nodes in 5usize..10) {
        let ds = dataset(nodes, seed, 0.3);
        let fast = ApVerifier::build(&ds.network, EngineProfile::Cached);
        let slow = ApVerifier::build(&ds.network, EngineProfile::Uncached);
        prop_assert_eq!(fast.num_atoms(), slow.num_atoms());
        for (s, d) in sample_pairs(&ds.network.graph, 3, seed) {
            let a = selective_bfs(&fast, s, d);
            let b = selective_bfs(&slow, s, d);
            // Atom universes are built in the same order from the same
            // predicates, so the id sets are directly comparable.
            prop_assert_eq!(a.delivered, b.delivered);
        }
    }

    #[test]
    fn bfs_and_enumeration_agree(seed in 0u64..400, nodes in 5usize..9) {
        let ds = dataset(nodes, seed, 0.2);
        let mut v = ApVerifier::build(&ds.network, EngineProfile::Cached);
        for (s, d) in sample_pairs(&ds.network.graph, 2, seed + 1) {
            let bfs = selective_bfs(&v, s, d);
            let bfs_bdd = v.atoms.to_bdd(&mut v.manager, &bfs.delivered);
            let en = path_enumeration(&mut v, s, d, 5_000_000);
            prop_assert!(!en.truncated, "enumeration truncated on a tiny net");
            prop_assert_eq!(bfs_bdd, en.delivered, "{:?} -> {:?}", s, d);
        }
    }

    #[test]
    fn apkeep_removal_inverts_insertion(seed in 0u64..200, nodes in 4usize..9) {
        let ds = dataset(nodes, seed, 0.4);
        let mut k = ApKeep::new(&ds.network, EngineProfile::Cached);
        for v in ds.network.graph.nodes() {
            for r in &ds.network.device(v).rules {
                k.insert(v, *r);
            }
        }
        // Remove in a different (reverse) order than insertion.
        for v in ds.network.graph.nodes() {
            let rules: Vec<_> = ds.network.device(v).rules.clone();
            for r in rules.iter().rev() {
                prop_assert!(k.remove(v, r).is_some());
            }
        }
        prop_assert_eq!(k.num_rules(), 0);
        prop_assert_eq!(k.num_atomic_predicates(), 1, "PPM must collapse to default-drop");
    }
}
