//! Cross-crate TE properties: the algorithm hierarchy
//! (greedy ≤ NCFlow ≤ flat LP ≤ total demand) must hold on arbitrary
//! seeded instances, with both LP solvers agreeing throughout.

use netrepro::graph::gen::{waxman, TopologySpec};
use netrepro::graph::traffic;
use netrepro::lp::dense::DenseSimplex;
use netrepro::lp::revised::RevisedSimplex;
use netrepro::te::baseline::solve_greedy;
use netrepro::te::mcf::{solve_mcf, TeInstance};
use netrepro::te::ncflow::{solve_ncflow, NcFlowConfig};
use proptest::prelude::*;

fn instance(nodes: usize, seed: u64, commodities: usize, demand_scale: f64) -> TeInstance {
    let graph = waxman(&TopologySpec::new("prop", nodes, seed));
    let tm = traffic::gravity(&graph, nodes as f64 * demand_scale, seed + 1);
    TeInstance { name: "prop".into(), graph, tm, paths_per_commodity: 3, max_commodities: commodities }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn algorithm_hierarchy(seed in 0u64..500, nodes in 10usize..26, scale in 5.0f64..60.0) {
        let inst = instance(nodes, seed, 12, scale);
        let flat = solve_mcf(&inst, &RevisedSimplex::default()).unwrap();
        let greedy = solve_greedy(&inst);
        let cfg = NcFlowConfig { num_clusters: 3, paths_per_commodity: 3, parallel_r2: false };
        let ncf = solve_ncflow(&inst, &cfg, &RevisedSimplex::default()).unwrap();
        let demand = inst.total_demand();

        // Everything is bounded by total demand.
        prop_assert!(flat.total_flow <= demand + 1e-6);
        prop_assert!(greedy.total_flow <= demand + 1e-6);
        prop_assert!(ncf.total_flow <= demand + 1e-6);
        // The flat LP is the optimum of the richest formulation the
        // heuristics approximate.
        prop_assert!(ncf.total_flow <= flat.total_flow + 1e-4,
            "ncflow {} > flat {}", ncf.total_flow, flat.total_flow);
        // Greedy may beat NCFlow's decomposition but never the flat LP
        // over the same path budget... greedy has unlimited paths, so
        // only the demand bound applies to it. Check non-negativity.
        prop_assert!(greedy.total_flow >= -1e-9);
    }

    #[test]
    fn solvers_agree_on_te(seed in 0u64..500, nodes in 10usize..20) {
        let inst = instance(nodes, seed, 8, 25.0);
        let fast = solve_mcf(&inst, &RevisedSimplex::default()).unwrap();
        let slow = solve_mcf(&inst, &DenseSimplex::default()).unwrap();
        prop_assert!((fast.total_flow - slow.total_flow).abs() < 1e-4,
            "revised {} vs dense {}", fast.total_flow, slow.total_flow);
    }

    #[test]
    fn ncflow_cluster_count_never_breaks_feasibility(seed in 0u64..200, k in 1usize..6) {
        let inst = instance(18, seed, 10, 30.0);
        let flat = solve_mcf(&inst, &RevisedSimplex::default()).unwrap();
        let cfg = NcFlowConfig { num_clusters: k, paths_per_commodity: 3, parallel_r2: false };
        let ncf = solve_ncflow(&inst, &cfg, &RevisedSimplex::default()).unwrap();
        prop_assert!(ncf.total_flow <= flat.total_flow + 1e-4);
        prop_assert!(ncf.total_flow >= 0.0);
    }

    #[test]
    fn per_commodity_flows_respect_demands(seed in 0u64..300) {
        let inst = instance(14, seed, 10, 40.0);
        let commodities = inst.commodities();
        let sol = solve_mcf(&inst, &RevisedSimplex::default()).unwrap();
        for (f, (_, _, d)) in sol.per_commodity.iter().zip(&commodities) {
            prop_assert!(*f <= d + 1e-6);
            prop_assert!(*f >= -1e-9);
        }
        let sum: f64 = sol.per_commodity.iter().sum();
        prop_assert!((sum - sol.total_flow).abs() < 1e-6);
    }
}
