//! End-to-end integration: each participant's full workflow — simulated
//! session, then differential validation on the real systems — must
//! reproduce the paper's qualitative claims.

use netrepro::core::paper::TargetSystem;
use netrepro::core::student::Participant;
use netrepro::core::validate::{
    dpv_dataset, te_instance, validate_ap, validate_apkeep, validate_arrow, validate_ncflow,
};
use netrepro::core::ReproductionSession;
use netrepro::graph::gen::{sample_pairs, TopologySpec};
use netrepro::te::arrow::{multi_fiber_scenarios, ArrowInstance};

#[test]
fn participant_a_ncflow_objective_within_paper_bound() {
    let inst = te_instance(&TopologySpec::new("Abilene", 11, 2023), 40, 4);
    let v = validate_ncflow(&inst).expect("validate");
    assert!(v.obj_diff_pct() <= 3.51, "objective diff {}% exceeds the paper's bound", v.obj_diff_pct());
    assert!(v.obj_open > 0.0, "degenerate instance");
}

#[test]
fn participant_a_reproduced_is_slower_on_mid_size_instances() {
    let inst = te_instance(&TopologySpec::new("CRL", 33, 2025), 100, 4);
    let v = validate_ncflow(&inst).expect("validate");
    assert!(
        v.latency_ratio() > 1.5,
        "dense ({:?}) should clearly trail revised ({:?})",
        v.latency_repro,
        v.latency_open
    );
}

#[test]
fn participant_b_arrow_formulations_diverge_under_large_cuts() {
    let mut te = te_instance(&TopologySpec::new("OpticalA", 16, 2023), 10, 3);
    te.tm.scale(4.0);
    let scenarios = multi_fiber_scenarios(&te, 3, 3);
    let inst = ArrowInstance { te, scenarios, restoration_fraction: 0.5 };
    let v = validate_arrow(&inst).expect("validate");
    // Direction: the open-source formulation dominates; on this
    // instance the gap is large (the paper's "up to 30%").
    assert!(v.obj_repro <= v.obj_open + 1e-6);
    assert!(
        v.obj_diff_pct() > 10.0,
        "expected a substantial formulation gap, got {:.2}%",
        v.obj_diff_pct()
    );
}

#[test]
fn participant_c_apkeep_matches_itself() {
    let ds = dpv_dataset("Internet2", 9, 12, 2032);
    let v = validate_apkeep(&ds, "Internet2");
    assert_eq!(v.atoms_open, v.atoms_repro);
    assert!(v.results_equal);
}

#[test]
fn participant_d_ap_same_answers_slower_verification() {
    let ds = dpv_dataset("Stanford", 14, 14, 2037);
    let queries = sample_pairs(&ds.network.graph, 4, 11);
    let v = validate_ap(&ds, "Stanford", &queries, 1_000_000);
    assert_eq!(v.atoms_open, v.atoms_repro, "atom counts must match");
    assert!(v.results_equal, "verification answers must match");
    assert!(
        v.verify_ratio() > 3.0,
        "path enumeration should be clearly slower (got {:.1}x)",
        v.verify_ratio()
    );
}

#[test]
fn all_four_sessions_succeed_and_rank_plausibly() {
    let mut locs = Vec::new();
    for sys in TargetSystem::EXPERIMENT {
        let r = ReproductionSession::new(Participant::preset(sys), 2023).run();
        // Feasibility claim: every participant finishes.
        assert!(r.artifact.components > 0);
        assert!(r.total_prompts() >= 5);
        locs.push((sys, r.artifact.loc_ratio()));
    }
    // Figure 5's shape: TE reproductions are far smaller than their
    // originals; DPV reproductions are comparable.
    let ratio = |s: TargetSystem| locs.iter().find(|(x, _)| *x == s).unwrap().1;
    assert!(ratio(TargetSystem::NcFlow) < 0.3);
    assert!(ratio(TargetSystem::Arrow) < 0.3);
    assert!(ratio(TargetSystem::ApKeep) > 0.7);
    assert!(ratio(TargetSystem::ApVerifier) > 0.7);
}

#[test]
fn umbrella_reexports_are_wired() {
    // Compile-time check that every sub-crate is reachable through the
    // umbrella crate paths used in the README snippets.
    let mut m = netrepro::bdd::BddManager::new(4, netrepro::bdd::EngineProfile::Cached);
    let a = m.var(0);
    assert_eq!(m.sat_count(a), 8.0);
    let p = netrepro::lp::Problem::new(netrepro::lp::Sense::Maximize);
    assert_eq!(p.num_vars(), 0);
    let g = netrepro::graph::gen::ring(3, 1.0);
    assert_eq!(g.num_nodes(), 3);
}
