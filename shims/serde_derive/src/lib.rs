//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the shapes this workspace actually uses — structs with named fields,
//! and enums whose variants are unit or struct-like — without `syn` or
//! `quote` (neither is available offline). The input item is parsed
//! directly from the compiler's `TokenStream` and the impl is emitted
//! as a string, matching serde's externally-tagged enum encoding:
//! a unit variant serialises to its name as a string, a struct variant
//! to `{"Variant": {fields...}}`.
//!
//! A subset of real serde's field attributes is honoured, because the
//! workspace relies on them for journal byte-compatibility when a
//! struct grows a field:
//!
//! * `#[serde(default)]` — on deserialisation a missing key takes
//!   `Default::default()` instead of erroring;
//! * `#[serde(default = "path")]` — ditto, via `path()`;
//! * `#[serde(skip_serializing_if = "path")]` — the field is omitted
//!   from the serialised object when `path(&field)` returns true.
//!
//! Any other `#[serde(...)]` argument is a compile-time panic, not a
//! silent no-op: pretending to honour an encoding attribute would
//! corrupt journals.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named struct field plus the serde attributes the shim honours.
struct Field {
    /// Field name.
    name: String,
    /// `None` = required on deserialise; `Some(None)` =
    /// `Default::default()` fallback; `Some(Some(path))` = `path()`
    /// fallback.
    default: Option<Option<String>>,
    /// Predicate path whose truth omits the field when serialising.
    skip_if: Option<String>,
}

/// A parsed `struct`/`enum` item: just the names the codegen needs.
enum Body {
    /// Named field list.
    Struct(Vec<Field>),
    /// `(variant, None)` for unit variants, `(variant, Some(fields))`
    /// for struct-like variants (variant fields take no attributes).
    Enum(Vec<(String, Option<Vec<String>>)>),
}

/// Derives `serde::Serialize` (the shim's `to_value` form).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    let out = match body {
        Body::Struct(fields) => {
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| {
                    let fname = &f.name;
                    let push = format!(
                        "pairs.push((\"{fname}\".to_string(), \
                         ::serde::Serialize::to_value(&self.{fname})));"
                    );
                    match &f.skip_if {
                        Some(path) => {
                            format!("if !{path}(&self.{fname}) {{ {push} }}")
                        }
                        None => push,
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut pairs: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {}\n\
                         ::serde::Value::Object(pairs)\n\
                     }}\n\
                 }}",
                pushes.join("\n")
            )
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    None => format!(
                        "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),"
                    ),
                    Some(fs) => {
                        let binds = fs.join(", ");
                        let pairs: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![\
                                 (\"{v}\".to_string(), ::serde::Value::Object(vec![{}]))\
                             ]),",
                            pairs.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    out.parse().expect("derived Serialize impl parses")
}

/// Derives `serde::Deserialize` (the shim's `from_value` form).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    let out = match body {
        Body::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let fname = &f.name;
                    match &f.default {
                        None => format!(
                            "{fname}: ::serde::Deserialize::from_value(v.field(\"{fname}\")?)?"
                        ),
                        Some(fallback) => {
                            let fb = match fallback {
                                None => "::core::default::Default::default()".to_string(),
                                Some(path) => format!("{path}()"),
                            };
                            format!(
                                "{fname}: match v.get(\"{fname}\") {{\n\
                                     Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                                     None => {fb},\n\
                                 }}"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| f.is_none())
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, f)| f.as_ref().map(|fs| (v, fs)))
                .map(|(v, fs)| {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(inner.field(\"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!("\"{v}\" => Ok({name}::{v} {{ {} }}),", inits.join(", "))
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::String(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => Err(::serde::DeError(format!(\n\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                                 let (tag, inner) = &pairs[0];\n\
                                 match tag.as_str() {{\n\
                                     {}\n\
                                     other => Err(::serde::DeError(format!(\n\
                                         \"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::DeError(format!(\n\
                                 \"bad {name} encoding: {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    out.parse().expect("derived Deserialize impl parses")
}

/// Extracts the item name and field/variant names from a derive input.
fn parse_item(input: TokenStream) -> (String, Body) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut kind = "";
    // Skip attributes (`#[...]`, including doc comments) and
    // visibility until the `struct`/`enum` keyword.
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                kind = if s == "struct" { "struct" } else { "enum" };
                i += 1;
                break;
            }
        }
        i += 1;
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected item name, got {other:?}"),
    };
    // Skip ahead to the body brace (no generics in this workspace, but
    // tolerate anything before the first top-level brace group).
    let group = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .unwrap_or_else(|| panic!("derive({name}): no braced body"));
    let body = if kind == "struct" {
        Body::Struct(
            split_top_level(group)
                .into_iter()
                .filter_map(|chunk| parse_field(&chunk, &name))
                .collect(),
        )
    } else {
        Body::Enum(
            split_top_level(group)
                .into_iter()
                .filter_map(|chunk| variant(&chunk, &name))
                .collect(),
        )
    };
    (name, body)
}

/// Splits a brace-group body on commas that sit outside any `<...>`
/// angle-bracket nesting (parens/brackets/braces are already nested
/// token groups, so only angle depth needs tracking).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle: i32 = 0;
    for t in stream {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().expect("chunk list non-empty").push(t);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Parses one struct-field chunk — `#[attrs] vis name: Type` — into a
/// [`Field`], honouring the chunk's `#[serde(...)]` attributes.
fn parse_field(chunk: &[TokenTree], item: &str) -> Option<Field> {
    let name = field_name(chunk)?;
    let mut field = Field { name, default: None, skip_if: None };
    // Attributes appear as `#` followed by a bracket group; only the
    // `serde(...)` ones matter here (doc comments etc. pass through).
    for t in chunk {
        let TokenTree::Group(g) = t else { continue };
        if g.delimiter() != Delimiter::Bracket {
            continue;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        match inner.first() {
            Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
            _ => continue,
        }
        let Some(TokenTree::Group(args)) = inner.get(1) else { continue };
        apply_serde_args(args.stream(), &mut field, item);
    }
    Some(field)
}

/// Applies the arguments of one `#[serde(...)]` attribute to `field`.
/// Unsupported arguments panic: silently ignoring an encoding attribute
/// would silently change serialized bytes.
fn apply_serde_args(stream: TokenStream, field: &mut Field, item: &str) {
    for arg in split_top_level(stream) {
        let key = match arg.first() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("derive({item}): bad serde attribute argument {other:?}"),
        };
        // `key` alone, or `key = "literal"`.
        let value = match (arg.get(1), arg.get(2)) {
            (None, _) => None,
            (Some(TokenTree::Punct(p)), Some(TokenTree::Literal(lit)))
                if p.as_char() == '=' =>
            {
                let s = lit.to_string();
                Some(s.trim_matches('"').to_string())
            }
            _ => panic!("derive({item}): bad serde attribute argument for `{key}`"),
        };
        match (key.as_str(), value) {
            ("default", path) => field.default = Some(path),
            ("skip_serializing_if", Some(path)) => field.skip_if = Some(path),
            (other, _) => panic!(
                "derive({item}): unsupported serde attribute `{other}` \
                 (the shim honours default / skip_serializing_if only)"
            ),
        }
    }
}

/// The field name in a `vis name: Type` chunk (attributes skipped).
fn field_name(chunk: &[TokenTree]) -> Option<String> {
    let mut last_ident = None;
    for t in chunk {
        match t {
            TokenTree::Punct(p) if p.as_char() == ':' => return last_ident,
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            _ => {}
        }
    }
    None
}

/// Parses one enum-variant chunk: `Name`, `Name { fields }`, rejecting
/// tuple variants (nothing in the workspace uses them).
fn variant(chunk: &[TokenTree], enum_name: &str) -> Option<(String, Option<Vec<String>>)> {
    let mut name = None;
    for t in chunk {
        match t {
            TokenTree::Ident(id) if name.is_none() => name = Some(id.to_string()),
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let fields = split_top_level(g.stream())
                    .into_iter()
                    .filter_map(|c| field_name(&c))
                    .collect();
                return name.map(|n| (n, Some(fields)));
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                panic!(
                    "derive({enum_name}): tuple variants are not supported by the serde shim"
                );
            }
            _ => {}
        }
    }
    name.map(|n| (n, None))
}
