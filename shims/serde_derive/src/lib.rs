//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the shapes this workspace actually uses — structs with named fields,
//! and enums whose variants are unit or struct-like — without `syn` or
//! `quote` (neither is available offline). The input item is parsed
//! directly from the compiler's `TokenStream` and the impl is emitted
//! as a string, matching serde's externally-tagged enum encoding:
//! a unit variant serialises to its name as a string, a struct variant
//! to `{"Variant": {fields...}}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `struct`/`enum` item: just the names the codegen needs.
enum Body {
    /// Named field list.
    Struct(Vec<String>),
    /// `(variant, None)` for unit variants, `(variant, Some(fields))`
    /// for struct-like variants.
    Enum(Vec<(String, Option<Vec<String>>)>),
}

/// Derives `serde::Serialize` (the shim's `to_value` form).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    let out = match body {
        Body::Struct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{}])\n\
                     }}\n\
                 }}",
                pairs.join(", ")
            )
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    None => format!(
                        "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),"
                    ),
                    Some(fs) => {
                        let binds = fs.join(", ");
                        let pairs: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![\
                                 (\"{v}\".to_string(), ::serde::Value::Object(vec![{}]))\
                             ]),",
                            pairs.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    out.parse().expect("derived Serialize impl parses")
}

/// Derives `serde::Deserialize` (the shim's `from_value` form).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    let out = match body {
        Body::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| f.is_none())
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, f)| f.as_ref().map(|fs| (v, fs)))
                .map(|(v, fs)| {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(inner.field(\"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!("\"{v}\" => Ok({name}::{v} {{ {} }}),", inits.join(", "))
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::String(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => Err(::serde::DeError(format!(\n\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                                 let (tag, inner) = &pairs[0];\n\
                                 match tag.as_str() {{\n\
                                     {}\n\
                                     other => Err(::serde::DeError(format!(\n\
                                         \"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::DeError(format!(\n\
                                 \"bad {name} encoding: {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    out.parse().expect("derived Deserialize impl parses")
}

/// Extracts the item name and field/variant names from a derive input.
fn parse_item(input: TokenStream) -> (String, Body) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut kind = "";
    // Skip attributes (`#[...]`, including doc comments) and
    // visibility until the `struct`/`enum` keyword.
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                kind = if s == "struct" { "struct" } else { "enum" };
                i += 1;
                break;
            }
        }
        i += 1;
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected item name, got {other:?}"),
    };
    // Skip ahead to the body brace (no generics in this workspace, but
    // tolerate anything before the first top-level brace group).
    let group = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .unwrap_or_else(|| panic!("derive({name}): no braced body"));
    let body = if kind == "struct" {
        Body::Struct(
            split_top_level(group)
                .into_iter()
                .filter_map(|chunk| field_name(&chunk))
                .collect(),
        )
    } else {
        Body::Enum(
            split_top_level(group)
                .into_iter()
                .filter_map(|chunk| variant(&chunk, &name))
                .collect(),
        )
    };
    (name, body)
}

/// Splits a brace-group body on commas that sit outside any `<...>`
/// angle-bracket nesting (parens/brackets/braces are already nested
/// token groups, so only angle depth needs tracking).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle: i32 = 0;
    for t in stream {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().expect("chunk list non-empty").push(t);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// The field name in a `vis name: Type` chunk (attributes skipped).
fn field_name(chunk: &[TokenTree]) -> Option<String> {
    let mut last_ident = None;
    for t in chunk {
        match t {
            TokenTree::Punct(p) if p.as_char() == ':' => return last_ident,
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            _ => {}
        }
    }
    None
}

/// Parses one enum-variant chunk: `Name`, `Name { fields }`, rejecting
/// tuple variants (nothing in the workspace uses them).
fn variant(chunk: &[TokenTree], enum_name: &str) -> Option<(String, Option<Vec<String>>)> {
    let mut name = None;
    for t in chunk {
        match t {
            TokenTree::Ident(id) if name.is_none() => name = Some(id.to_string()),
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let fields = split_top_level(g.stream())
                    .into_iter()
                    .filter_map(|c| field_name(&c))
                    .collect();
                return name.map(|n| (n, Some(fields)));
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                panic!(
                    "derive({enum_name}): tuple variants are not supported by the serde shim"
                );
            }
            _ => {}
        }
    }
    name.map(|n| (n, None))
}
