//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this shim provides
//! the subset of serde the workspace uses: `#[derive(Serialize,
//! Deserialize)]` over structs with named fields and enums with unit /
//! struct / tuple variants, serialising into the in-memory [`Value`]
//! tree that the sibling `serde_json` shim renders and parses.
//!
//! The data model is deliberately JSON-shaped rather than serde's full
//! visitor architecture: every serialisable type converts to and from
//! [`Value`]. The derive macros live in the `serde_derive` shim and are
//! re-exported here, so `use serde::{Serialize, Deserialize}` imports
//! both the traits and the derives exactly as with real serde.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::time::Duration;

/// An in-memory JSON-like document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (also covers every non-negative integer the
    /// workspace serialises; magnitudes here are far below `i64::MAX`).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// The sentinel returned when indexing a missing key.
const NULL: Value = Value::Null;

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric payload as `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 => Some(*f as u64),
            _ => None,
        }
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object member lookup that reports a typed error on absence —
    /// the accessor the derived `Deserialize` impls use.
    pub fn field(&self, key: &str) -> Result<&Value, DeError> {
        self.get(key)
            .ok_or_else(|| DeError(format!("missing field `{key}`")))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Deserialisation error: a human-readable mismatch description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serialise `self`.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialise from `v`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls ----

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError(format!("{i} out of range for {}", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError(format!(
                        "expected integer for {}, got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
ser_int!(u8, u16, u32, i8, i16, i32, i64, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}
impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_u64()
            .ok_or_else(|| DeError(format!("expected unsigned integer, got {v:?}")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError(format!("expected 2-tuple, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError(format!("expected 3-tuple, got {other:?}"))),
        }
    }
}

impl<K: ToString + std::str::FromStr + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

// Match real serde's `{ "secs": u64, "nanos": u32 }` encoding.
impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::Int(self.as_secs() as i64)),
            ("nanos".to_string(), Value::Int(self.subsec_nanos() as i64)),
        ])
    }
}
impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs = u64::from_value(v.field("secs")?)?;
        let nanos = u32::from_value(v.field("nanos")?)?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
