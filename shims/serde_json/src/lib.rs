//! Offline stand-in for `serde_json`.
//!
//! Renders the serde shim's [`Value`] tree to JSON text (compact and
//! pretty, 2-space indent) and parses JSON text back with a small
//! recursive-descent parser. Covers the full JSON grammar the
//! workspace emits: objects, arrays, strings with standard escapes,
//! integers, floats (including exponents), booleans and null.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// A serialisation or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serialises `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialises `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type (including [`Value`]
/// itself).
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---- writer ----

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        // Keep whole floats distinguishable from ints (serde_json
        // prints `1.0`, not `1`).
        if f == f.trunc() && f.abs() < 1e15 {
            out.push_str(&format!("{f:.1}"));
        } else {
            out.push_str(&f.to_string());
        }
    } else {
        // JSON has no NaN/Inf; real serde_json errors here, but the
        // workspace never serialises non-finite values, so null is a
        // safe degenerate encoding.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b" \t\n\r".contains(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(Error(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error(format!("unexpected end of input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("unterminated array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error(format!("unterminated object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("dangling escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("short \\u escape".to_string()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".to_string()))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".to_string()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_document() {
        let v = Value::Object(vec![
            ("id".to_string(), Value::String("Figure 4".to_string())),
            (
                "rows".to_string(),
                Value::Array(vec![
                    Value::Int(3),
                    Value::Float(0.5),
                    Value::Bool(true),
                    Value::Null,
                    Value::String("a \"quoted\"\nline".to_string()),
                ]),
            ),
            ("empty".to_string(), Value::Array(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(from_str::<Value>("-42").unwrap(), Value::Int(-42));
        assert_eq!(from_str::<Value>("2.5e3").unwrap(), Value::Float(2500.0));
        assert_eq!(from_str::<Value>("1.0").unwrap(), Value::Float(1.0));
    }

    #[test]
    fn whole_floats_stay_floats() {
        let s = to_string(&Value::Float(3.0)).unwrap();
        assert_eq!(s, "3.0");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
