//! Offline stand-in for `proptest`.
//!
//! Provides the strategy/`proptest!` surface this workspace uses —
//! range and tuple strategies, `prop_map`, `prop_recursive`,
//! `prop_oneof!`, `collection::vec`, `any::<bool>()`, the
//! `prop_assert*` macros and `ProptestConfig::with_cases` — driven by a
//! deterministic per-test PRNG (seeded from the test's name, so runs
//! are reproducible). Failing inputs are reported via `Debug` but not
//! shrunk; with fully seeded deterministic generators that trade-off
//! is acceptable for an offline build.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod test_runner {
    //! Config, PRNG and failure type for generated test fns.

    /// How many random cases each `proptest!` test runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Deterministic generator behind every strategy draw
    /// (SplitMix64: tiny, full-period, plenty for test sampling).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test's name so each test gets an independent,
        /// stable stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling bound");
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A failed property (carries the formatted assertion message).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }
}

use test_runner::TestRng;

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// is just a deterministic sampler.
pub trait Strategy: Clone {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind an `Rc`.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy {
            sample: Rc::new(move |rng| inner.generate(rng)),
        }
    }

    /// Builds recursive values: `recurse` receives a strategy for the
    /// previous depth level and returns the next one; the result mixes
    /// all levels (so leaves stay reachable, as in real proptest).
    /// `_desired_size` and `_branch` are accepted for signature
    /// compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut levels = vec![leaf.clone()];
        let mut cur = leaf;
        for _ in 0..depth {
            cur = recurse(cur).boxed();
            levels.push(cur.clone());
        }
        Union::new(levels).boxed()
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    sample: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sample: Rc::clone(&self.sample),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- range strategies ----

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}
signed_strategy!(i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---- tuple strategies ----

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A/a, B/b);
tuple_strategy!(A/a, B/b, C/c);
tuple_strategy!(A/a, B/b, C/c, D/d);
tuple_strategy!(A/a, B/b, C/c, D/d, E/e);
tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f);
tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f, G/g);

// ---- any ----

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait ArbitrarySample: Sized {
    /// Draw one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitrarySample for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitrarySample for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl ArbitrarySample for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl ArbitrarySample for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// The strategy returned by [`any`].
#[derive(Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: ArbitrarySample + Clone> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: ArbitrarySample + Clone>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---- collections ----

pub mod collection {
    //! `vec` and its size argument.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Acceptable size arguments for [`vec`]: a fixed length or a
    /// half-open range of lengths.
    #[derive(Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.lo < self.size.hi, "empty vec size range");
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `elem` and
    /// whose length comes from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

// ---- macros ----

/// Declares property tests: each `fn name(arg in strategy, ...)` item
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = result {
                    panic!(
                        "proptest `{}` failed on case {}/{}: {}",
                        stringify!($name), case + 1, cfg.cases, e
                    );
                }
            }
        }
    )*};
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            )));
        }
    };
}

/// Fails the current property case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{} == {} failed: {:?} vs {:?} at {}:{}",
                stringify!($a), stringify!($b), a, b, file!(), line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{} == {} failed: {:?} vs {:?} ({}) at {}:{}",
                stringify!($a), stringify!($b), a, b,
                format!($($fmt)+), file!(), line!()
            )));
        }
    }};
}

/// Fails the current property case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{} != {} failed: both {:?} at {}:{}",
                stringify!($a), stringify!($b), a, file!(), line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{} != {} failed: both {:?} ({}) at {}:{}",
                stringify!($a), stringify!($b), a,
                format!($($fmt)+), file!(), line!()
            )));
        }
    }};
}

/// Uniform choice among the listed strategies (all must generate the
/// same type). Weighted arms are not supported by the shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

pub mod prelude {
    //! Everything a test file needs via `use proptest::prelude::*`.

    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, Strategy, Union,
    };

    pub mod prop {
        //! The `prop::` alias namespace (`prop::collection::vec`).
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_and_vec_respect_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..200 {
            let n = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&n));
            let v = prop::collection::vec(0u32..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 10));
            let w = prop::collection::vec(0u32..4, 8).generate(&mut rng);
            assert_eq!(w.len(), 8);
        }
    }

    #[test]
    fn map_tuple_union_compose() {
        let mut rng = TestRng::from_name("compose");
        let s = (0u32..5, 0u32..5).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            assert!(s.generate(&mut rng) < 10);
        }
        let u = prop_oneof![Just(1u32), Just(2u32)];
        for _ in 0..20 {
            let x = u.generate(&mut rng);
            assert!(x == 1 || x == 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn generated_tests_run(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            if flag {
                prop_assert_ne!(x, 100);
            }
            prop_assert_eq!(x, x, "reflexivity for {}", x);
        }
    }
}
