//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this local shim
//! provides the (small) subset of the `rand` 0.9 API the workspace
//! uses: [`SeedableRng::seed_from_u64`], [`Rng::random`],
//! [`Rng::random_range`] and [`rngs::StdRng`]. Determinism is the only
//! contract that matters here — every experiment in the workspace is
//! seeded — so `StdRng` is a fixed xoshiro256++ generator seeded via
//! SplitMix64, and integer range sampling uses plain rejection-free
//! reduction. Statistical quality is more than adequate for the seeded
//! simulations and dataset generators in this repository.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level uniform 64-bit generation.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an [`RngCore`] ("standard"
/// distribution in rand's terms).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A sample from the standard distribution of `T`.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic for a given seed, `Clone`-able, and
    /// fast; not cryptographic (nothing here needs that).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.random_range(3..9usize);
            assert!((3..9).contains(&x));
            let y = r.random_range(0..=5u32);
            assert!(y <= 5);
            let z = r.random_range(-1.0..1.0f64 + 1.0);
            assert!((-1.0..2.0).contains(&z));
        }
    }

    #[test]
    fn roughly_uniform_f64() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
