//! Offline stand-in for `criterion`.
//!
//! Provides the `criterion_group!`/`criterion_main!`/`Criterion`
//! surface the bench bins use. Instead of criterion's statistical
//! machinery it warms each closure once, times a small fixed number of
//! iterations, and prints the mean wall time per iteration — enough to
//! eyeball relative cost, which is all the captured experiment tables
//! need. Honours `NETREPRO_BENCH_ITERS` to raise or lower the
//! iteration count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

pub use std::hint::black_box;

/// The top-level benchmark driver passed to each group fn.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

fn default_iters() -> u32 {
    std::env::var("NETREPRO_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup { iters: default_iters() }
    }

    /// Times one benchmark outside any group (criterion's top-level
    /// `bench_function`).
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: default_iters(), total_ns: 0, timed_iters: 0 };
        f(&mut b);
        b.report(&id.to_string());
        self
    }
}

/// A benchmark id: label plus an optional parameter, printed as
/// `label/param` like criterion's.
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// An id for `label` at parameter `param`.
    pub fn new(label: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            repr: format!("{label}/{param}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.repr)
    }
}

/// A group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup {
    iters: u32,
}

impl BenchmarkGroup {
    /// Sets the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = n.max(1) as u32;
        self
    }

    /// Times one benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.iters,
            total_ns: 0,
            timed_iters: 0,
        };
        f(&mut b);
        b.report(&id.to_string());
        self
    }

    /// Times one benchmark that borrows an input.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: std::fmt::Display,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let mut b = Bencher {
            iters: self.iters,
            total_ns: 0,
            timed_iters: 0,
        };
        f(&mut b, input);
        b.report(&id.to_string());
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Runs and times the measured closure.
pub struct Bencher {
    iters: u32,
    total_ns: u128,
    timed_iters: u32,
}

impl Bencher {
    /// Runs `f` once to warm up, then `iters` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.total_ns += start.elapsed().as_nanos();
        self.timed_iters += self.iters;
    }

    fn report(&self, id: &str) {
        if self.timed_iters == 0 {
            println!("  {id:<40} (not measured)");
            return;
        }
        let mean_ns = self.total_ns / self.timed_iters as u128;
        let pretty = if mean_ns >= 1_000_000 {
            format!("{:.3} ms", mean_ns as f64 / 1e6)
        } else if mean_ns >= 1_000 {
            format!("{:.3} us", mean_ns as f64 / 1e3)
        } else {
            format!("{mean_ns} ns")
        };
        println!("  {id:<40} {pretty}/iter over {} iters", self.timed_iters);
    }
}

/// Declares a bench group fn list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Bench bins are also built by `cargo test`; the harness
            // passes flags like `--bench`/`--test` that we ignore.
            $($group();)+
        }
    };
}
